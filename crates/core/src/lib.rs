//! # smo-core — the SMO timing engine
//!
//! Reproduction of the core contribution of Sakallah, Mudge & Olukotun,
//! *"Analysis and Design of Latch-Controlled Synchronous Digital Circuits"*:
//!
//! * **Constraint generation** ([`TimingModel`]) — the clock constraints
//!   C1–C4 and latch constraints L1/L2R/L3 of §III, built "almost by
//!   inspection" from a [`Circuit`](smo_circuit::Circuit), with provenance
//!   on every LP row.
//! * **The design problem** ([`min_cycle_time`]) — Algorithm MLP (§IV):
//!   solve the relaxed linear program P2, then slide the departure times to
//!   the nonlinear fixpoint. By Theorem 1 the resulting cycle time is the
//!   exact optimum of the nonlinear problem P1.
//! * **The analysis problem** ([`verify`]) — check a concrete clock schedule
//!   against the constraints, with per-latch slack, positive-loop diagnosis
//!   and optional short-path (hold) checking.
//! * **Baselines** ([`baseline`]) — edge-triggered, symmetric-clock
//!   (NRIP-like) and single-borrow heuristics for the paper's comparisons.
//! * **Critical segments** ([`critical_report`]) — binding-constraint/dual
//!   analysis of which combinational delays set the cycle time (§V).
//! * **Combinatorial bounds** ([`cycle_time_bounds`]) — a certified bracket
//!   `lower ≤ Tc* ≤ upper` from the latch graph alone: maximum-ratio
//!   critical cycles per SCC (the paper's "average delay around the loop",
//!   §V) against a feasible flip-flop-style schedule, no LP required.
//! * **Infeasibility diagnosis** ([`diagnose_infeasibility`]) — when extras
//!   (a capped cycle time, minimum widths, …) over-constrain the model, a
//!   Farkas-certified irreducible infeasible subsystem names the exact
//!   C1–C3 / L1 / L2R constraints in conflict.
//! * **Timing diagrams** ([`render_schedule`], [`render_solution`]) — ASCII
//!   renderings in the style of Figs. 6 and 11.
//! * **Parallel sweeps** ([`sweep_cycle_time`]) — warm-started batch
//!   re-solves: parametric clock sweeps and Monte-Carlo delay
//!   perturbations fanned over a work-claiming thread pool, deterministic
//!   for any thread count.
//! * **Difference-constraint fast path** ([`Backend`], [`classify_model`])
//!   — a static row classifier maps the SMO model onto a
//!   difference-constraint graph; pure models solve by Bellman–Ford plus
//!   Lawler's exact min-cycle-ratio iteration (no simplex at all) with an
//!   independently re-checked [`GraphCertificate`], mixed models
//!   warm-start the simplex from the graph schedule, and infeasibility
//!   surfaces as a machine-checked negative-cycle Farkas certificate named
//!   in paper vocabulary.
//! * **Short-path race detection** ([`race_analysis`]) — the dual hazard
//!   the long-path constraints cannot see: per-edge/per-latch hold slacks
//!   at the canonical schedule for the solved cycle time
//!   (backend-independent by construction), double-clocking races with an
//!   arithmetically re-checkable [`ShortPathWitness`], and the
//!   clock-separation increase that would retire each one.
//!
//! ## Quickstart
//!
//! ```
//! use smo_circuit::{CircuitBuilder, PhaseId};
//! use smo_core::{min_cycle_time, verify};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Example 1 (Fig. 5) at Δ41 = 80 ns.
//! let mut b = CircuitBuilder::new(2);
//! let p1 = PhaseId::from_number(1);
//! let p2 = PhaseId::from_number(2);
//! let l1 = b.add_latch("L1", p1, 10.0, 10.0);
//! let l2 = b.add_latch("L2", p2, 10.0, 10.0);
//! let l3 = b.add_latch("L3", p1, 10.0, 10.0);
//! let l4 = b.add_latch("L4", p2, 10.0, 10.0);
//! b.connect(l1, l2, 20.0);
//! b.connect(l2, l3, 20.0);
//! b.connect(l3, l4, 60.0);
//! b.connect(l4, l1, 80.0);
//! let circuit = b.build()?;
//!
//! let solution = min_cycle_time(&circuit)?;
//! assert!((solution.cycle_time() - 110.0).abs() < 1e-6); // Fig. 6(a)
//!
//! // The optimal schedule verifies cleanly; a 1%-shrunk one does not.
//! assert!(verify(&circuit, solution.schedule()).is_feasible());
//! assert!(!verify(&circuit, &solution.schedule().scaled(0.99)).is_feasible());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod baseline;
mod bounds;
mod critical;
mod diagnose;
mod diagram;
mod error;
mod fastpath;
mod mlp;
mod model;
mod propagation;
mod race;
mod report;
mod sensitivity;
mod solution;
mod sweep;

pub use analysis::{
    min_cycle_for_shape, verify, verify_with, AnalysisOptions, AnalysisReport, Violation,
};
pub use bounds::{cycle_time_bounds, CriticalCycle, CycleTimeBounds};
pub use critical::{critical_report, CriticalEdge, CriticalReport, CriticalSegment};
pub use diagnose::{diagnose_infeasibility, DiagnosedConstraint, InfeasibilityReport};
pub use diagram::{render_schedule, render_solution};
pub use error::TimingError;
pub use fastpath::{
    classify_model, graph_feasible_at, graph_feasible_at_within, variable_images, Backend,
    GraphCertificate,
};
pub use mlp::{
    min_cycle_time, min_cycle_time_warm, min_cycle_time_with, solve_model, solve_model_canonical,
    solve_model_canonical_with, solve_model_with, MlpOptions, UpdateMode,
};
pub use model::{
    shift_expr, ConstraintInfo, ConstraintKind, ConstraintOptions, DeparturePinning,
    NonoverlapScope, TimingModel, VarMap,
};
pub use propagation::{Arc, FixpointResult, PropagationSystem, FIXPOINT_TOL};
pub use race::{race_analysis, race_analysis_at, RaceOptions, RaceReport, ShortPathWitness};
pub use report::{render_report, timing_report};
pub use sensitivity::{cycle_time_curve, delay_sensitivities};
pub use solution::TimingSolution;
pub use sweep::{sweep_cycle_time, SweepOptions, SweepParam, SweepReport, SweepRun};

// Re-export the schedule type: it is the natural currency between the
// circuit model and the timing engine.
pub use smo_circuit::ClockSchedule;
