//! Delay-sensitivity analysis at the timing level.
//!
//! §VI of the paper: "We also intend to use parametric programming
//! techniques to quantify the notion of critical path segments and to study
//! the effects on the optimal cycle time of varying the circuit delays."
//! This module packages both:
//!
//! * [`delay_sensitivities`] — `dT_c*/dΔ` for *every* edge at once, read
//!   off the LP duals of one solve (zero for non-critical edges);
//! * [`cycle_time_curve`] — the exact piecewise-linear `T_c*(Δ_e)` for one
//!   edge over a delay range, via the parametric-RHS simplex (this is how
//!   `fig7_sweep` recovers the breakpoints of Fig. 7 exactly).

use crate::error::TimingError;
use crate::model::{ConstraintKind, TimingModel};
use smo_circuit::{Circuit, EdgeId};
use smo_lp::{parametric_rhs, ParametricCurve};

/// `dT_c*/dΔ` per edge (indexed by edge index), from one LP solve.
///
/// Entries are in `[0, 1]` for circuits whose optimum is achieved (the
/// delay of an edge can be shared among at most one cycle's worth of
/// schedule per unit). Zero means the edge is not on any binding segment.
///
/// # Errors
///
/// Propagates LP failures from [`TimingModel::solve_lp`].
///
/// # Examples
///
/// ```
/// use smo_core::{delay_sensitivities, TimingModel};
/// # fn main() -> Result<(), smo_core::TimingError> {
/// let circuit = smo_test_circuit();
/// let model = TimingModel::build(&circuit)?;
/// let sens = delay_sensitivities(&circuit, &model)?;
/// assert_eq!(sens.len(), circuit.num_edges());
/// # Ok(())
/// # }
/// # fn smo_test_circuit() -> smo_circuit::Circuit {
/// #     let mut b = smo_circuit::CircuitBuilder::new(2);
/// #     let p = smo_circuit::PhaseId::from_number;
/// #     let a = b.add_latch("A", p(1), 1.0, 1.0);
/// #     let c = b.add_latch("B", p(2), 1.0, 1.0);
/// #     b.connect(a, c, 5.0);
/// #     b.connect(c, a, 5.0);
/// #     b.build().unwrap()
/// # }
/// ```
pub fn delay_sensitivities(
    circuit: &Circuit,
    model: &TimingModel,
) -> Result<Vec<f64>, TimingError> {
    let sol = model.solve_lp()?;
    let mut out = vec![0.0; circuit.num_edges()];
    for info in model.constraints() {
        if matches!(
            info.kind,
            ConstraintKind::Propagation | ConstraintKind::FlipFlopSetup
        ) {
            if let Some(edge) = info.edge {
                // A Ge propagation row's dual is ≥ 0 in a minimize problem;
                // a FF-setup Le row's dual is ≤ 0 and its RHS carries −Δ, so
                // dTc/dΔ = −dual. |dual| covers both.
                out[edge.index()] += sol.dual(info.row).abs();
            }
        }
    }
    Ok(out)
}

/// The exact optimal cycle time `T_c*` as a piecewise-linear function of
/// one edge's delay, for delay ∈ `[0, max_delay]`.
///
/// The returned curve's parameter θ *is the edge delay itself* (not an
/// offset): internally the model is rebuilt with the edge's delay set to
/// zero and θ sweeps it upward.
///
/// # Errors
///
/// Propagates LP failures; [`TimingError::Infeasible`] if the zero-delay
/// base model cannot be solved (impossible for plain options).
///
/// # Panics
///
/// Panics if `edge` does not belong to `circuit`.
pub fn cycle_time_curve(
    circuit: &Circuit,
    model: &TimingModel,
    edge: EdgeId,
    max_delay: f64,
) -> Result<ParametricCurve, TimingError> {
    let e = circuit.edge(edge);
    let mut base = model.clone();
    let row = base
        .edge_constraint(edge)
        .ok_or_else(|| TimingError::InvalidOptions {
            reason: format!("edge {edge:?} has no propagation or FF-setup row in this model"),
        })?;
    // Remove the edge's own delay from the row's RHS so θ = Δ directly.
    let (_, sense, rhs) = base.problem().constraint(row);
    let delta_sign = match sense {
        smo_lp::Sense::Ge => 1.0,  // propagation: RHS = Δ_DQ + Δ
        smo_lp::Sense::Le => -1.0, // FF setup: RHS = −(Δ_DQ + Δ + setup)
        smo_lp::Sense::Eq => unreachable!("edge rows are inequalities"),
    };
    base.problem_mut()
        .set_rhs(row, rhs - delta_sign * e.max_delay);
    let curve = parametric_rhs(base.problem(), &[(row, delta_sign)], max_delay)?;
    Ok(curve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smo_circuit::{CircuitBuilder, PhaseId};

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    use smo_gen::paper::example1;

    #[test]
    fn sensitivities_match_figure7_slopes() {
        for (d41, expect) in [(10.0, 0.0), (60.0, 0.5), (120.0, 1.0)] {
            let c = example1(d41);
            let m = TimingModel::build(&c).unwrap();
            let sens = delay_sensitivities(&c, &m).unwrap();
            assert!(
                (sens[3] - expect).abs() < 1e-6,
                "Δ41 = {d41}: dTc/dΔ = {}, expected {expect}",
                sens[3]
            );
        }
    }

    #[test]
    fn curve_recovers_figure7_exactly() {
        let c = example1(50.0); // base value irrelevant: the curve resets it
        let m = TimingModel::build(&c).unwrap();
        let curve = cycle_time_curve(&c, &m, smo_circuit::EdgeId::new(3), 140.0).unwrap();
        let bps = curve.breakpoints();
        assert_eq!(bps.len(), 2, "{curve:?}");
        assert!((bps[0] - 20.0).abs() < 1e-6);
        assert!((bps[1] - 100.0).abs() < 1e-6);
        // probe against direct solves
        for d in [0.0, 35.0, 100.0, 139.0] {
            let direct = crate::min_cycle_time(&example1(d)).unwrap().cycle_time();
            let para = curve.objective_at(d).unwrap();
            assert!((direct - para).abs() < 1e-6, "Δ = {d}: {para} vs {direct}");
        }
    }

    #[test]
    fn curve_works_for_flip_flop_setup_edges() {
        // FF pipeline: Tc = dq + Δ + setup, so the curve is the identity
        // plus the constant dq + setup = 3.
        let mut b = CircuitBuilder::new(1);
        let f1 = b.add_flip_flop("F1", p(1), 1.0, 2.0);
        let f2 = b.add_flip_flop("F2", p(1), 1.0, 2.0);
        b.connect(f1, f2, 10.0);
        b.connect(f2, f1, 1.0);
        let c = b.build().unwrap();
        let m = TimingModel::build(&c).unwrap();
        let curve = cycle_time_curve(&c, &m, smo_circuit::EdgeId::new(0), 50.0).unwrap();
        for d in [5.0_f64, 20.0, 45.0] {
            let expect = (d + 3.0).max(1.0 + 3.0); // other edge floor
            assert!(
                (curve.objective_at(d).unwrap() - expect).abs() < 1e-6,
                "Δ = {d}"
            );
        }
    }

    #[test]
    fn all_sensitivities_lie_in_unit_interval() {
        let c = example1(75.0);
        let m = TimingModel::build(&c).unwrap();
        for s in delay_sensitivities(&c, &m).unwrap() {
            assert!((-1e-9..=1.0 + 1e-9).contains(&s), "sensitivity {s}");
        }
    }
}
