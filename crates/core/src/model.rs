//! Constraint generation: the SMO timing model as a linear program.
//!
//! [`TimingModel::build`] turns a [`Circuit`] into the paper's problem **P2**
//! (§IV): minimize `T_c` subject to the clock constraints C1–C4 (eqs. 3–9)
//! and the latch constraints L1, **L2R** (the relaxed propagation
//! inequalities, eq. 19) and L3. Every generated LP row carries a
//! [`ConstraintInfo`] provenance record so reports can point back at the
//! circuit element responsible.
//!
//! Variable layout (all non-negative, eq. 7–9 & 18): `T_c`, then the phase
//! widths `T_1…T_k`, the phase starts `s_1…s_k`, and the departure times
//! `D_1…D_l`.
//!
//! Flip-flops (needed for the paper's Example 3) are modelled as degenerate
//! synchronizers: `D_i = 0` (departure pinned to the enabling edge) and, per
//! fan-in edge, an arrival-before-edge setup row
//! `D_j + Δ_DQj + Δ_ji + S_{pjpi} + Δ_DCi ≤ 0`.

use crate::error::TimingError;
use smo_circuit::{Circuit, ClockSchedule, ClockSpec, EdgeId, LatchId, PhaseId, SyncKind};
use smo_lp::{ConstraintId, LinExpr, OptimalSolution, Problem, Sense, VarId};
use std::fmt;

/// Which edges generate phase-nonoverlap (C3) rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NonoverlapScope {
    /// Every input/output phase pair, exactly as in the paper (eq. 6).
    #[default]
    AllPairs,
    /// Only pairs whose destination synchronizer is a level-sensitive latch.
    ///
    /// Rationale: C3 exists to break race-through around transparent loops;
    /// an edge-triggered destination breaks the race by itself, so requiring
    /// the destination phase to close before the source phase opens is
    /// unnecessarily restrictive for flip-flop-rich designs. This is an
    /// *extension*; the default follows the paper.
    LatchDestinations,
}

/// Which latch departures are pinned to the enabling edge (`D_i = 0`),
/// i.e. forbidden from borrowing time into their phase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DeparturePinning {
    /// No pinning: the paper's formulation (departures are free).
    #[default]
    None,
    /// Pin every latch: a zero-borrowing (edge-style) design. Used as the
    /// first pass of the single-borrow baseline.
    All,
    /// Pin every latch except the listed ones. Used as the second pass of
    /// the single-borrow baseline (the exceptions get to borrow).
    AllExcept(Vec<LatchId>),
}

impl DeparturePinning {
    /// Is the given latch pinned under this policy?
    pub fn is_pinned(&self, id: LatchId) -> bool {
        match self {
            DeparturePinning::None => false,
            DeparturePinning::All => true,
            DeparturePinning::AllExcept(free) => !free.contains(&id),
        }
    }
}

/// Options controlling constraint generation.
///
/// The defaults reproduce the paper's "minimum set of requirements"; the
/// extras implement the further requirements the paper mentions as easy
/// additions (§III-A: "minimum phase width, minimum phase separation, and
/// clock skew, can be easily added").
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintOptions {
    /// Lower bound on every phase width `T_i` (default `0`).
    pub min_phase_width: f64,
    /// Extra separation required by each nonoverlap row:
    /// `s_i ≥ s_j + T_j + sep − C_ji·T_c` (default `0`).
    pub min_separation: f64,
    /// Which edges generate C3 rows.
    pub nonoverlap_scope: NonoverlapScope,
    /// Fix the cycle time to this value instead of leaving it free.
    pub fixed_cycle: Option<f64>,
    /// Upper bound on the cycle time (e.g. a target to check against).
    pub max_cycle: Option<f64>,
    /// Force an evenly spaced, equal-width clock:
    /// `s_i = (i−1)·T_c/k` and `T_i = T_c/k − min_separation`.
    ///
    /// Used by the NRIP-like symmetric baseline.
    pub symmetric_clock: bool,
    /// Margin subtracted from every setup row to model clock skew /
    /// uncertainty (§III-A's "clock skew" extra; default `0`).
    pub setup_margin: f64,
    /// Pin selected latch departures to their enabling edge (`D_i = 0`),
    /// forbidding time borrowing there. Used by the heuristic baselines.
    pub pinning: DeparturePinning,
}

impl Default for ConstraintOptions {
    fn default() -> Self {
        ConstraintOptions {
            min_phase_width: 0.0,
            min_separation: 0.0,
            nonoverlap_scope: NonoverlapScope::AllPairs,
            fixed_cycle: None,
            max_cycle: None,
            symmetric_clock: false,
            setup_margin: 0.0,
            pinning: DeparturePinning::None,
        }
    }
}

impl ConstraintOptions {
    /// Validates option values.
    fn validate(&self) -> Result<(), TimingError> {
        let bad = |what: &str, v: f64| {
            Err(TimingError::InvalidOptions {
                reason: format!("option {what} = {v} must be finite and non-negative"),
            })
        };
        for (what, v) in [
            ("min_phase_width", self.min_phase_width),
            ("min_separation", self.min_separation),
            ("setup_margin", self.setup_margin),
        ] {
            if !v.is_finite() || v < 0.0 {
                return bad(what, v);
            }
        }
        for (what, v) in [
            ("fixed_cycle", self.fixed_cycle),
            ("max_cycle", self.max_cycle),
        ] {
            if let Some(v) = v {
                if !v.is_finite() || v < 0.0 {
                    return bad(what, v);
                }
            }
        }
        Ok(())
    }
}

/// The category of a generated constraint row (provenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// C1: `T_i ≤ T_c` (eq. 3).
    PeriodicityWidth,
    /// C1: `s_i ≤ T_c` (eq. 4).
    PeriodicityStart,
    /// C2: `s_i ≤ s_{i+1}` (eq. 5).
    PhaseOrder,
    /// C3: `s_i ≥ s_j + T_j − C_ji·T_c` (eq. 6).
    PhaseNonoverlap,
    /// L1: `D_i + Δ_DCi ≤ T_{p_i}` (eq. 16) for latches.
    Setup,
    /// Flip-flop setup at the enabling edge (per fan-in edge).
    FlipFlopSetup,
    /// L2R: `D_i ≥ D_j + Δ_DQj + Δ_ji + S_{p_jp_i}` (eq. 19).
    Propagation,
    /// Flip-flop departure pinned to the edge: `D_i = 0`.
    FlipFlopDeparture,
    /// Extra: minimum phase width.
    MinWidth,
    /// Extra: fixed or bounded cycle time.
    CycleBound,
    /// Extra: symmetric-clock shape rows.
    SymmetricClock,
    /// Extra: a latch departure pinned to its enabling edge (`D_i = 0`).
    PinnedDeparture,
}

impl fmt::Display for ConstraintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConstraintKind::PeriodicityWidth => "periodicity (width)",
            ConstraintKind::PeriodicityStart => "periodicity (start)",
            ConstraintKind::PhaseOrder => "phase ordering",
            ConstraintKind::PhaseNonoverlap => "phase nonoverlap",
            ConstraintKind::Setup => "latch setup",
            ConstraintKind::FlipFlopSetup => "flip-flop setup",
            ConstraintKind::Propagation => "propagation",
            ConstraintKind::FlipFlopDeparture => "flip-flop departure",
            ConstraintKind::MinWidth => "minimum phase width",
            ConstraintKind::CycleBound => "cycle-time bound",
            ConstraintKind::SymmetricClock => "symmetric clock shape",
            ConstraintKind::PinnedDeparture => "pinned departure",
        };
        write!(f, "{s}")
    }
}

/// Provenance of one LP row.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintInfo {
    /// What kind of row this is.
    pub kind: ConstraintKind,
    /// LP row handle (usable with the solved model's duals/slacks).
    pub row: ConstraintId,
    /// The synchronizer this row is about, if any.
    pub latch: Option<LatchId>,
    /// The combinational edge this row is about, if any.
    pub edge: Option<EdgeId>,
    /// The phase(s) this row is about, if any.
    pub phases: Vec<PhaseId>,
}

/// Maps timing variables to LP variables.
#[derive(Debug, Clone)]
pub struct VarMap {
    tc: VarId,
    widths: Vec<VarId>,
    starts: Vec<VarId>,
    departures: Vec<VarId>,
}

impl VarMap {
    /// The cycle-time variable `T_c`.
    pub fn tc(&self) -> VarId {
        self.tc
    }

    /// The width variable `T_i` of a phase.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn width(&self, p: PhaseId) -> VarId {
        self.widths[p.index()]
    }

    /// The start variable `s_i` of a phase.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn start(&self, p: PhaseId) -> VarId {
        self.starts[p.index()]
    }

    /// The departure variable `D_i` of a synchronizer.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn departure(&self, l: LatchId) -> VarId {
        self.departures[l.index()]
    }

    /// Number of phases.
    pub fn num_phases(&self) -> usize {
        self.widths.len()
    }

    /// Number of synchronizers.
    pub fn num_latches(&self) -> usize {
        self.departures.len()
    }
}

/// The symbolic phase-shift operator `S_{ij}` as a linear expression
/// (eq. 12): `s_i − s_j − C_ij·T_c`, with `i` the source phase and `j` the
/// destination.
pub fn shift_expr(vars: &VarMap, from: PhaseId, to: PhaseId) -> LinExpr {
    let mut e = LinExpr::from(vars.start(from)) - vars.start(to);
    if ClockSpec::c_flag(from, to) {
        e = e - vars.tc();
    }
    e
}

/// The SMO timing constraints of a circuit, encoded as an LP, with full
/// provenance.
#[derive(Debug, Clone)]
pub struct TimingModel {
    problem: Problem,
    vars: VarMap,
    infos: Vec<ConstraintInfo>,
    options: ConstraintOptions,
}

impl TimingModel {
    /// Builds the paper's problem P2 for `circuit` with default options.
    ///
    /// # Errors
    ///
    /// Propagates invalid-option and LP construction errors.
    pub fn build(circuit: &Circuit) -> Result<Self, TimingError> {
        Self::build_with(circuit, &ConstraintOptions::default())
    }

    /// Builds problem P2 with explicit [`ConstraintOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::Infeasible`] for invalid option values.
    pub fn build_with(circuit: &Circuit, options: &ConstraintOptions) -> Result<Self, TimingError> {
        options.validate()?;
        let k = circuit.num_phases();
        let l = circuit.num_syncs();
        let mut p = Problem::new();

        // -- variables ---------------------------------------------------
        let tc = p.add_var("Tc");
        let widths: Vec<VarId> = (0..k).map(|i| p.add_var(format!("T{}", i + 1))).collect();
        let starts: Vec<VarId> = (0..k).map(|i| p.add_var(format!("s{}", i + 1))).collect();
        let departures: Vec<VarId> = (0..l).map(|i| p.add_var(format!("D{}", i + 1))).collect();
        let vars = VarMap {
            tc,
            widths,
            starts,
            departures,
        };
        let mut infos = Vec::new();
        let push = |p: &mut Problem,
                    infos: &mut Vec<ConstraintInfo>,
                    kind: ConstraintKind,
                    latch: Option<LatchId>,
                    edge: Option<EdgeId>,
                    phases: Vec<PhaseId>,
                    expr: LinExpr,
                    sense: Sense,
                    rhs: f64| {
            let row = p.constrain_named(Some(kind.to_string()), expr, sense, rhs);
            infos.push(ConstraintInfo {
                kind,
                row,
                latch,
                edge,
                phases,
            });
        };

        // -- C1: periodicity (eqs. 3-4) -----------------------------------
        for i in 0..k {
            let ph = PhaseId::new(i);
            push(
                &mut p,
                &mut infos,
                ConstraintKind::PeriodicityWidth,
                None,
                None,
                vec![ph],
                LinExpr::from(vars.width(ph)) - tc,
                Sense::Le,
                0.0,
            );
            push(
                &mut p,
                &mut infos,
                ConstraintKind::PeriodicityStart,
                None,
                None,
                vec![ph],
                LinExpr::from(vars.start(ph)) - tc,
                Sense::Le,
                0.0,
            );
        }

        // -- C2: phase ordering (eq. 5) ------------------------------------
        for i in 0..k.saturating_sub(1) {
            let a = PhaseId::new(i);
            let b = PhaseId::new(i + 1);
            push(
                &mut p,
                &mut infos,
                ConstraintKind::PhaseOrder,
                None,
                None,
                vec![a, b],
                LinExpr::from(vars.start(a)) - vars.start(b),
                Sense::Le,
                0.0,
            );
        }

        // -- C3: phase nonoverlap (eq. 6) ----------------------------------
        // K_ij = 1 for source phase i, dest phase j; row:
        //   s_i ≥ s_j + T_j + sep − C_ji·T_c
        let mut k_pairs = smo_circuit::BoolMatrix::new(k);
        for e in circuit.edges() {
            if options.nonoverlap_scope == NonoverlapScope::LatchDestinations
                && circuit.sync(e.to).kind != SyncKind::Latch
            {
                continue;
            }
            let pi = circuit.sync(e.from).phase;
            let pj = circuit.sync(e.to).phase;
            k_pairs.set(pi.index(), pj.index(), true);
        }
        for (i, j) in k_pairs.ones() {
            let (pi, pj) = (PhaseId::new(i), PhaseId::new(j));
            // s_i − s_j − T_j + C_ji·T_c ≥ sep
            let mut expr = LinExpr::from(vars.start(pi)) - vars.start(pj) - vars.width(pj);
            if ClockSpec::c_flag(pj, pi) {
                expr = expr + vars.tc();
            }
            push(
                &mut p,
                &mut infos,
                ConstraintKind::PhaseNonoverlap,
                None,
                None,
                vec![pi, pj],
                expr,
                Sense::Ge,
                options.min_separation,
            );
        }

        // -- L1 / FF setup & departures ------------------------------------
        for (id, s) in circuit.syncs() {
            match s.kind {
                SyncKind::Latch => {
                    // D_i + Δ_DC + margin ≤ T_{p_i}
                    push(
                        &mut p,
                        &mut infos,
                        ConstraintKind::Setup,
                        Some(id),
                        None,
                        vec![s.phase],
                        LinExpr::from(vars.departure(id)) - vars.width(s.phase),
                        Sense::Le,
                        -(s.setup + options.setup_margin),
                    );
                }
                SyncKind::FlipFlop => {
                    // departure pinned to the enabling edge
                    push(
                        &mut p,
                        &mut infos,
                        ConstraintKind::FlipFlopDeparture,
                        Some(id),
                        None,
                        vec![s.phase],
                        vars.departure(id).into(),
                        Sense::Eq,
                        0.0,
                    );
                    // setup at the edge, one row per fan-in edge
                    for &eid in circuit.fanin(id) {
                        let e = circuit.edge(eid);
                        let src = circuit.sync(e.from);
                        let expr = LinExpr::from(vars.departure(e.from))
                            + shift_expr(&vars, src.phase, s.phase);
                        push(
                            &mut p,
                            &mut infos,
                            ConstraintKind::FlipFlopSetup,
                            Some(id),
                            Some(eid),
                            vec![src.phase, s.phase],
                            expr,
                            Sense::Le,
                            -(src.dq + e.max_delay + s.setup + options.setup_margin),
                        );
                    }
                }
            }
        }

        // -- L2R: relaxed propagation (eq. 19) ------------------------------
        for (idx, e) in circuit.edges().iter().enumerate() {
            let dst = circuit.sync(e.to);
            if dst.kind != SyncKind::Latch {
                continue; // FF destinations use FlipFlopSetup rows instead
            }
            let src = circuit.sync(e.from);
            // D_i − D_j − S_{p_j p_i} ≥ Δ_DQj + Δ_ji
            let expr = LinExpr::from(vars.departure(e.to))
                - vars.departure(e.from)
                - shift_expr(&vars, src.phase, dst.phase);
            push(
                &mut p,
                &mut infos,
                ConstraintKind::Propagation,
                Some(e.to),
                Some(EdgeId::new(idx)),
                vec![src.phase, dst.phase],
                expr,
                Sense::Ge,
                src.dq + e.max_delay,
            );
        }

        // -- extras ---------------------------------------------------------
        if options.min_phase_width > 0.0 {
            for i in 0..k {
                let ph = PhaseId::new(i);
                push(
                    &mut p,
                    &mut infos,
                    ConstraintKind::MinWidth,
                    None,
                    None,
                    vec![ph],
                    vars.width(ph).into(),
                    Sense::Ge,
                    options.min_phase_width,
                );
            }
        }
        if let Some(fixed) = options.fixed_cycle {
            push(
                &mut p,
                &mut infos,
                ConstraintKind::CycleBound,
                None,
                None,
                vec![],
                tc.into(),
                Sense::Eq,
                fixed,
            );
        }
        if let Some(max) = options.max_cycle {
            push(
                &mut p,
                &mut infos,
                ConstraintKind::CycleBound,
                None,
                None,
                vec![],
                tc.into(),
                Sense::Le,
                max,
            );
        }
        if options.symmetric_clock {
            let kf = k as f64;
            for i in 0..k {
                let ph = PhaseId::new(i);
                // s_i − (i−1)/k · Tc = 0
                push(
                    &mut p,
                    &mut infos,
                    ConstraintKind::SymmetricClock,
                    None,
                    None,
                    vec![ph],
                    LinExpr::from(vars.start(ph)) - (i as f64 / kf) * LinExpr::from(tc),
                    Sense::Eq,
                    0.0,
                );
                // T_i − Tc/k = −sep
                push(
                    &mut p,
                    &mut infos,
                    ConstraintKind::SymmetricClock,
                    None,
                    None,
                    vec![ph],
                    LinExpr::from(vars.width(ph)) - (1.0 / kf) * LinExpr::from(tc),
                    Sense::Eq,
                    -options.min_separation,
                );
            }
        }

        for (id, s) in circuit.syncs() {
            if s.kind == SyncKind::Latch && options.pinning.is_pinned(id) {
                push(
                    &mut p,
                    &mut infos,
                    ConstraintKind::PinnedDeparture,
                    Some(id),
                    None,
                    vec![],
                    vars.departure(id).into(),
                    Sense::Eq,
                    0.0,
                );
            }
        }

        p.minimize(tc.into());
        Ok(TimingModel {
            problem: p,
            vars,
            infos,
            options: options.clone(),
        })
    }

    /// The underlying LP.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Mutable access to the underlying LP, for advanced uses (adding custom
    /// rows, changing a right-hand side for a sweep).
    pub fn problem_mut(&mut self) -> &mut Problem {
        &mut self.problem
    }

    /// The variable layout.
    pub fn vars(&self) -> &VarMap {
        &self.vars
    }

    /// Provenance records, one per generated LP row, in row order.
    pub fn constraints(&self) -> &[ConstraintInfo] {
        &self.infos
    }

    /// Number of generated constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.infos.len()
    }

    /// The options the model was built with.
    pub fn options(&self) -> &ConstraintOptions {
        &self.options
    }

    /// The LP row carrying a given edge's propagation (or flip-flop setup)
    /// constraint — the row whose RHS contains that edge's `Δ_ji`, which is
    /// what parametric delay studies perturb.
    pub fn edge_constraint(&self, edge: EdgeId) -> Option<ConstraintId> {
        self.infos
            .iter()
            .find(|c| {
                c.edge == Some(edge)
                    && matches!(
                        c.kind,
                        ConstraintKind::Propagation | ConstraintKind::FlipFlopSetup
                    )
            })
            .map(|c| c.row)
    }

    /// Updates the combinational delay an edge contributes to its
    /// propagation (or flip-flop setup) row, enabling cheap what-if
    /// re-solves without rebuilding the model.
    ///
    /// Only the LP is touched; the caller's [`Circuit`] is not modified, so
    /// downstream fixpoint/verification steps should be run against a
    /// matching modified circuit if needed.
    ///
    /// # Panics
    ///
    /// Panics if `edge` has no delay row in this model.
    pub fn set_edge_delay(&mut self, edge: EdgeId, old_delay: f64, new_delay: f64) {
        let row = self
            .edge_constraint(edge)
            .expect("edge has a propagation or FF-setup row");
        let (_, sense, rhs) = self.problem.constraint(row);
        let sign = match sense {
            Sense::Ge => 1.0,
            Sense::Le => -1.0,
            Sense::Eq => unreachable!("edge rows are inequalities"),
        };
        self.problem
            .set_rhs(row, rhs + sign * (new_delay - old_delay));
    }

    /// Solves the LP and returns the raw optimal solution.
    ///
    /// # Errors
    ///
    /// [`TimingError::Infeasible`] / [`TimingError::Unbounded`] for those
    /// statuses, [`TimingError::Lp`] for solver failures.
    pub fn solve_lp(&self) -> Result<OptimalSolution, TimingError> {
        self.solve_lp_with(smo_lp::SimplexVariant::Dense)
    }

    /// Like [`TimingModel::solve_lp`] with an explicit simplex
    /// implementation (the dense/revised ablation of DESIGN.md).
    ///
    /// # Errors
    ///
    /// See [`TimingModel::solve_lp`].
    pub fn solve_lp_with(
        &self,
        variant: smo_lp::SimplexVariant,
    ) -> Result<OptimalSolution, TimingError> {
        let sol = self.problem.solve_with(variant)?;
        match sol.status() {
            smo_lp::Status::Optimal => Ok(sol.into_optimal()?),
            smo_lp::Status::Infeasible => Err(TimingError::Infeasible {
                reason: "the clock and latch constraints admit no schedule \
                         (check fixed/max cycle time and minimum width options)"
                    .into(),
            }),
            smo_lp::Status::Unbounded => Err(TimingError::Unbounded),
        }
    }

    /// Like [`TimingModel::solve_lp_with`], but the verdict is
    /// independently machine-checked: the solve walks the numerical
    /// recovery ladder of
    /// [`Problem::solve_certified`](smo_lp::Problem::solve_certified)
    /// (alternate simplex variant, geometric-mean equilibration, one round
    /// of iterative refinement) until a certificate of optimality —
    /// evaluated against the original, unscaled constraint rows — passes.
    ///
    /// # Errors
    ///
    /// As [`TimingModel::solve_lp`], plus
    /// [`smo_lp::LpError::CertificationFailed`] (wrapped in
    /// [`TimingError::Lp`]) when no rung of the ladder certifies, and
    /// [`smo_lp::LpError::Budget`] when the policy's budget runs out.
    pub fn solve_lp_certified(
        &self,
        policy: &smo_lp::RecoveryPolicy,
    ) -> Result<(OptimalSolution, smo_lp::Certificate), TimingError> {
        let certified = self.problem.solve_certified(policy)?;
        match certified.status() {
            smo_lp::Status::Optimal => {
                let Some(cert) = certified.certificate().cloned() else {
                    return Err(TimingError::Lp(smo_lp::LpError::Numerical {
                        context: "certified solve returned optimal without a certificate".into(),
                    }));
                };
                Ok((certified.into_solution().into_optimal()?, cert))
            }
            smo_lp::Status::Infeasible => Err(TimingError::Infeasible {
                reason: "the clock and latch constraints admit no schedule \
                         (check fixed/max cycle time and minimum width options); \
                         infeasibility confirmed by a Farkas certificate"
                    .into(),
            }),
            smo_lp::Status::Unbounded => Err(TimingError::Unbounded),
        }
    }

    /// Like [`TimingModel::solve_lp_with`], warm-starting from a basis
    /// snapshot captured by an earlier optimal solve of this model or of a
    /// delay-perturbed copy (see
    /// [`Problem::solve_from_basis_with`](smo_lp::Problem::solve_from_basis_with)).
    ///
    /// Delay edits via [`TimingModel::set_edge_delay`] change only
    /// right-hand sides, so the snapshot stays structurally valid and the
    /// repair is typically a handful of dual-simplex pivots instead of a
    /// from-scratch phase 1. A snapshot that no longer fits falls back to
    /// the cold path silently — verdicts never depend on the warm start.
    ///
    /// # Errors
    ///
    /// See [`TimingModel::solve_lp`].
    pub fn solve_lp_from_basis(
        &self,
        variant: smo_lp::SimplexVariant,
        basis: &smo_lp::Basis,
    ) -> Result<OptimalSolution, TimingError> {
        let sol = self.problem.solve_from_basis_with(variant, basis)?;
        match sol.status() {
            smo_lp::Status::Optimal => Ok(sol.into_optimal()?),
            smo_lp::Status::Infeasible => Err(TimingError::Infeasible {
                reason: "the clock and latch constraints admit no schedule \
                         (check fixed/max cycle time and minimum width options)"
                    .into(),
            }),
            smo_lp::Status::Unbounded => Err(TimingError::Unbounded),
        }
    }

    /// The uncertified analogue of
    /// [`TimingModel::solve_lp_certified_from_basis`]: one plain solve
    /// (warm-started when a snapshot is supplied) under a wall-clock /
    /// iteration budget, so `--time-limit` holds even with `--no-certify`.
    ///
    /// # Errors
    ///
    /// As [`TimingModel::solve_lp`], plus [`smo_lp::LpError::Budget`]
    /// (wrapped in [`TimingError::Lp`]) when the budget runs out.
    pub fn solve_lp_budgeted(
        &self,
        variant: smo_lp::SimplexVariant,
        warm: Option<&smo_lp::Basis>,
        budget: smo_lp::SolveBudget,
        pricing: smo_lp::Pricing,
    ) -> Result<OptimalSolution, TimingError> {
        let sol = match warm {
            Some(b) => self
                .problem
                .solve_from_basis_with_options(variant, b, budget, pricing)?,
            None => self.problem.solve_with_options(variant, budget, pricing)?,
        };
        match sol.status() {
            smo_lp::Status::Optimal => Ok(sol.into_optimal()?),
            smo_lp::Status::Infeasible => Err(TimingError::Infeasible {
                reason: "the clock and latch constraints admit no schedule \
                         (check fixed/max cycle time and minimum width options)"
                    .into(),
            }),
            smo_lp::Status::Unbounded => Err(TimingError::Unbounded),
        }
    }

    /// Like [`TimingModel::solve_lp_certified`], with an optional basis
    /// snapshot prepended as the first rung of the recovery ladder. The
    /// certificate is still evaluated against the raw constraint rows, so a
    /// warm-started solve certifies exactly as strictly as a cold one.
    ///
    /// # Errors
    ///
    /// See [`TimingModel::solve_lp_certified`].
    pub fn solve_lp_certified_from_basis(
        &self,
        policy: &smo_lp::RecoveryPolicy,
        basis: Option<&smo_lp::Basis>,
    ) -> Result<(OptimalSolution, smo_lp::Certificate), TimingError> {
        let certified = self.problem.solve_certified_from_basis(policy, basis)?;
        match certified.status() {
            smo_lp::Status::Optimal => {
                let Some(cert) = certified.certificate().cloned() else {
                    return Err(TimingError::Lp(smo_lp::LpError::Numerical {
                        context: "certified solve returned optimal without a certificate".into(),
                    }));
                };
                Ok((certified.into_solution().into_optimal()?, cert))
            }
            smo_lp::Status::Infeasible => Err(TimingError::Infeasible {
                reason: "the clock and latch constraints admit no schedule \
                         (check fixed/max cycle time and minimum width options); \
                         infeasibility confirmed by a Farkas certificate"
                    .into(),
            }),
            smo_lp::Status::Unbounded => Err(TimingError::Unbounded),
        }
    }

    /// Extracts the clock schedule from an LP solution of this model.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::Circuit`] if the extracted values fail
    /// schedule validation (indicates a numerical problem).
    pub fn extract_schedule(&self, sol: &OptimalSolution) -> Result<ClockSchedule, TimingError> {
        let k = self.vars.num_phases();
        let cycle = sol.value(self.vars.tc());
        let clamp = |v: f64| if v.abs() < 1e-9 { 0.0 } else { v };
        let mut starts: Vec<f64> = (0..k)
            .map(|i| clamp(sol.value(self.vars.start(PhaseId::new(i)))))
            .collect();
        let widths = (0..k)
            .map(|i| clamp(sol.value(self.vars.width(PhaseId::new(i)))))
            .collect();
        // Guard against tiny negative/ordering noise from the solver.
        for i in 1..k {
            if starts[i] < starts[i - 1] {
                starts[i] = starts[i - 1];
            }
        }
        Ok(ClockSchedule::new(clamp(cycle), starts, widths)?)
    }

    /// Extracts the departure-time vector from an LP solution of this model.
    pub fn extract_departures(&self, sol: &OptimalSolution) -> Vec<f64> {
        (0..self.vars.num_latches())
            .map(|i| sol.value(self.vars.departure(LatchId::new(i))).max(0.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smo_circuit::CircuitBuilder;

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    use smo_gen::paper::example1;

    #[test]
    fn constraint_count_matches_paper_structure() {
        // Example 1: k = 2, l = 4, 4 edges, 2 I/O phase pairs.
        // C1: 2k = 4; C2: k−1 = 1; C3: 2; L1: 4; L2R: 4  → 15 rows.
        let m = TimingModel::build(&example1(80.0)).unwrap();
        assert_eq!(m.num_constraints(), 15);
        // paper bound: 4k + (F+1)·l = 8 + 2·4 = 16 ≥ 15 ✓
        let c = example1(80.0);
        assert!(m.num_constraints() <= 4 * c.num_phases() + (c.max_fanin() + 1) * c.num_syncs());
    }

    #[test]
    fn lp_solves_example1_to_known_optimum() {
        for (d41, expect) in [(80.0, 110.0), (100.0, 120.0), (120.0, 140.0), (60.0, 100.0)] {
            let m = TimingModel::build(&example1(d41)).unwrap();
            let sol = m.solve_lp().unwrap();
            assert!(
                (sol.objective() - expect).abs() < 1e-6,
                "Δ41 = {d41}: Tc = {}, expected {expect}",
                sol.objective()
            );
        }
    }

    #[test]
    fn schedule_extraction_is_valid() {
        let m = TimingModel::build(&example1(120.0)).unwrap();
        let sol = m.solve_lp().unwrap();
        let sched = m.extract_schedule(&sol).unwrap();
        assert_eq!(sched.num_phases(), 2);
        assert!((sched.cycle() - 140.0).abs() < 1e-6);
        sched.validate().unwrap();
    }

    #[test]
    fn fixed_cycle_below_optimum_is_infeasible() {
        let mut opts = ConstraintOptions {
            fixed_cycle: Some(100.0),
            ..Default::default()
        };
        let m = TimingModel::build_with(&example1(80.0), &opts).unwrap();
        assert!(matches!(
            m.solve_lp().unwrap_err(),
            TimingError::Infeasible { .. }
        ));
        opts.fixed_cycle = Some(115.0);
        let m = TimingModel::build_with(&example1(80.0), &opts).unwrap();
        let sol = m.solve_lp().unwrap();
        assert!((sol.objective() - 115.0).abs() < 1e-6);
    }

    #[test]
    fn min_phase_width_raises_cycle_time() {
        // With Δ41 = 80 the free optimum is 110; demanding very wide phases
        // must push Tc up (each phase ≥ 70 and both phases must not overlap
        // → Tc ≥ 140).
        let opts = ConstraintOptions {
            min_phase_width: 70.0,
            ..Default::default()
        };
        let m = TimingModel::build_with(&example1(80.0), &opts).unwrap();
        let sol = m.solve_lp().unwrap();
        assert!(sol.objective() >= 140.0 - 1e-6);
    }

    #[test]
    fn symmetric_clock_is_suboptimal_at_unbalanced_point() {
        let opts = ConstraintOptions {
            symmetric_clock: true,
            ..Default::default()
        };
        let m = TimingModel::build_with(&example1(80.0), &opts).unwrap();
        let sol = m.solve_lp().unwrap();
        assert!(
            sol.objective() > 110.0 + 1e-6,
            "symmetric Tc = {}",
            sol.objective()
        );
        // ...but optimal at the balanced point Δ41 = 60 (see §V discussion).
        let m = TimingModel::build_with(&example1(60.0), &opts).unwrap();
        let sol = m.solve_lp().unwrap();
        assert!((sol.objective() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn min_separation_spreads_phases() {
        let opts = ConstraintOptions {
            min_separation: 5.0,
            ..Default::default()
        };
        let m = TimingModel::build_with(&example1(80.0), &opts).unwrap();
        let sol = m.solve_lp().unwrap();
        let sched = m.extract_schedule(&sol).unwrap();
        // every nonoverlap pair keeps ≥ 5 of dead time
        let (s1, t1) = (sched.start(p(1)), sched.width(p(1)));
        let (s2, t2) = (sched.start(p(2)), sched.width(p(2)));
        assert!(s2 - (s1 + t1) >= 5.0 - 1e-9);
        assert!(s1 + sched.cycle() - (s2 + t2) >= 5.0 - 1e-9);
        // and the optimum cannot be better than without it
        assert!(sol.objective() >= 110.0 - 1e-9);
    }

    #[test]
    fn setup_margin_raises_cycle_time_when_setup_binds() {
        // At Δ41 = 0 the optimum sits on the Fig. 7 flat part, set by the
        // L3→L4 stage requirement Δ_DQ + Δ + Δ_DC = 80 — exactly the regime
        // where a skew margin costs cycle time (80 → 84). In the borrowing
        // regime (Δ41 = 80, loop-average-bound) the margin is absorbed.
        let margin = ConstraintOptions {
            setup_margin: 4.0,
            ..Default::default()
        };
        let with_skew = TimingModel::build_with(&example1(0.0), &margin)
            .unwrap()
            .solve_lp()
            .unwrap()
            .objective();
        assert!((with_skew - 84.0).abs() < 1e-6, "Tc = {with_skew}");
        let absorbed = TimingModel::build_with(&example1(80.0), &margin)
            .unwrap()
            .solve_lp()
            .unwrap()
            .objective();
        assert!((absorbed - 110.0).abs() < 1e-6, "Tc = {absorbed}");
    }

    #[test]
    fn max_cycle_bounds_feasibility() {
        let opts = ConstraintOptions {
            max_cycle: Some(109.0),
            ..Default::default()
        };
        let m = TimingModel::build_with(&example1(80.0), &opts).unwrap();
        assert!(matches!(
            m.solve_lp().unwrap_err(),
            TimingError::Infeasible { .. }
        ));
        let opts = ConstraintOptions {
            max_cycle: Some(130.0),
            ..Default::default()
        };
        let m = TimingModel::build_with(&example1(80.0), &opts).unwrap();
        assert!((m.solve_lp().unwrap().objective() - 110.0).abs() < 1e-6);
    }

    #[test]
    fn options_validation_rejects_nan() {
        let opts = ConstraintOptions {
            min_phase_width: f64::NAN,
            ..Default::default()
        };
        assert!(TimingModel::build_with(&example1(80.0), &opts).is_err());
    }

    #[test]
    fn flip_flop_rows_replace_propagation() {
        let mut b = CircuitBuilder::new(1);
        let f1 = b.add_flip_flop("F1", p(1), 1.0, 2.0);
        let f2 = b.add_flip_flop("F2", p(1), 1.0, 2.0);
        b.connect(f1, f2, 10.0);
        let c = b.build().unwrap();
        let m = TimingModel::build(&c).unwrap();
        assert!(m
            .constraints()
            .iter()
            .all(|i| i.kind != ConstraintKind::Propagation));
        // single-phase FF pipeline: Tc ≥ dq + Δ + setup = 13
        let sol = m.solve_lp().unwrap();
        assert!(
            (sol.objective() - 13.0).abs() < 1e-6,
            "Tc = {}",
            sol.objective()
        );
    }

    #[test]
    fn edge_constraint_lookup_finds_the_delay_row() {
        let c = example1(80.0);
        let m = TimingModel::build(&c).unwrap();
        let eid = c.fanout(c.find("L4").unwrap())[0];
        let row = m.edge_constraint(eid).unwrap();
        // the row's RHS is Δ_DQ4 + Δ41 = 10 + 80
        let (_, _, rhs) = m.problem().constraint(row);
        assert_eq!(rhs, 90.0);
    }

    #[test]
    fn set_edge_delay_enables_cheap_what_if() {
        let c = example1(80.0);
        let mut m = TimingModel::build(&c).unwrap();
        assert!((m.solve_lp().unwrap().objective() - 110.0).abs() < 1e-6);
        // what if Δ41 were 120 instead?
        m.set_edge_delay(EdgeId::new(3), 80.0, 120.0);
        assert!((m.solve_lp().unwrap().objective() - 140.0).abs() < 1e-6);
        // and back
        m.set_edge_delay(EdgeId::new(3), 120.0, 80.0);
        assert!((m.solve_lp().unwrap().objective() - 110.0).abs() < 1e-6);
    }

    #[test]
    fn shift_expr_matches_schedule_shift() {
        let c = example1(80.0);
        let m = TimingModel::build(&c).unwrap();
        let sol = m.solve_lp().unwrap();
        let sched = m.extract_schedule(&sol).unwrap();
        for (a, b) in [(p(1), p(2)), (p(2), p(1)), (p(1), p(1)), (p(2), p(2))] {
            let sym = shift_expr(m.vars(), a, b).eval(sol.values());
            let conc = sched.shift(a, b);
            assert!(
                (sym - conc).abs() < 1e-9,
                "S_{}{} symbolic {sym} vs concrete {conc}",
                a.number(),
                b.number()
            );
        }
    }
}
