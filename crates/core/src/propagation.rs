//! The departure-time propagation system and its fixpoint solvers.
//!
//! With the clock schedule held fixed, the latch propagation constraints L2
//! (eq. 17) become a max-plus fixpoint system over the departure vector `D`:
//!
//! ```text
//! D_i = max(0, max_j (D_j + Δ_DQj + Δ_ji + S_{p_j p_i}))     (latches)
//! D_i = 0                                                     (flip-flops)
//! ```
//!
//! Three solvers are provided, matching the paper's Algorithm MLP and its
//! suggested enhancements (§IV):
//!
//! * [`PropagationSystem::jacobi`] — the paper's synchronous update;
//! * [`PropagationSystem::gauss_seidel`] — in-place sweeps ("a more
//!   efficient Gauss-Seidel-style iteration is obviously possible");
//! * [`PropagationSystem::event_driven`] — worklist update touching only
//!   departures whose inputs changed ("an event-driven update mechanism …
//!   can be easily implemented").
//!
//! All three converge to the same fixpoint: from a point satisfying the
//! relaxed constraints L2R the iteration is monotone non-increasing and
//! bounded below by `0`; from `0` it is monotone non-decreasing and — when
//! every loop's gain is non-positive — stabilizes within `l` sweeps (a
//! longest-path argument: revisiting a non-positive-gain cycle never
//! increases a path weight).

use smo_circuit::{Circuit, ClockSchedule, LatchId, SyncKind};

/// Convergence tolerance for departure-time fixpoints.
pub const FIXPOINT_TOL: f64 = 1e-9;

/// One resolved fan-in arc: departure of `source` plus `weight` contributes
/// to the arrival at the owning latch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arc {
    /// Index of the source synchronizer.
    pub source: usize,
    /// `Δ_DQj + Δ_ji + S_{p_j p_i}` evaluated at the fixed schedule
    /// (long-path / late mode).
    pub weight: f64,
    /// `Δ_DQj + δ_ji + S_{p_j p_i}` with the edge's contamination delay
    /// (short-path / early mode).
    pub weight_early: f64,
}

/// The max-plus propagation system of a circuit at a fixed clock schedule.
#[derive(Debug, Clone)]
pub struct PropagationSystem {
    incoming: Vec<Vec<Arc>>,
    outgoing: Vec<Vec<usize>>, // dest indices, deduplicated
    is_ff: Vec<bool>,
}

/// Result of a fixpoint run.
#[derive(Debug, Clone, PartialEq)]
pub struct FixpointResult {
    /// The departure vector at termination.
    pub departures: Vec<f64>,
    /// Number of full sweeps (Jacobi/Gauss-Seidel) or processed work items
    /// (event-driven).
    pub iterations: usize,
    /// `false` if the safeguard bound was hit before stabilizing.
    pub converged: bool,
    /// The trailing residual trajectory: the largest departure movement of
    /// each of the last [`RESIDUAL_WINDOW`] sweeps (or accepted events).
    /// On non-convergence this distinguishes a genuinely diverging
    /// iteration (growing residuals — a positive-gain loop) from one
    /// grinding against the tolerance (residuals hovering near
    /// `FIXPOINT_TOL` — a numerical problem in the schedule).
    pub residuals: Vec<f64>,
}

/// How many trailing per-sweep residuals a [`FixpointResult`] retains.
pub const RESIDUAL_WINDOW: usize = 16;

/// Rolling push: keeps only the last [`RESIDUAL_WINDOW`] entries.
fn push_residual(trajectory: &mut Vec<f64>, r: f64) {
    if trajectory.len() == RESIDUAL_WINDOW {
        trajectory.remove(0);
    }
    trajectory.push(r);
}

impl PropagationSystem {
    /// Builds the system for `circuit` under `schedule`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule's phase count differs from the circuit's.
    pub fn new(circuit: &Circuit, schedule: &ClockSchedule) -> Self {
        Self::build(circuit, schedule, |e| e.min_delay)
    }

    /// Like [`PropagationSystem::new`] but the early-mode arc weights use
    /// the *effective* short-path delays of
    /// [`Edge::short_delay`](smo_circuit::Edge::short_delay): edges whose
    /// contamination delay was never measured fall back to their max delay
    /// instead of the conservative `0`. This is the weight choice of the
    /// race detector ([`race_analysis`](crate::race_analysis)), where an
    /// unspecified short path must not manufacture a violation.
    ///
    /// # Panics
    ///
    /// Panics if the schedule's phase count differs from the circuit's.
    pub fn with_short_delays(circuit: &Circuit, schedule: &ClockSchedule) -> Self {
        Self::build(circuit, schedule, |e| e.short_delay())
    }

    fn build(
        circuit: &Circuit,
        schedule: &ClockSchedule,
        early_delay: impl Fn(&smo_circuit::Edge) -> f64,
    ) -> Self {
        assert_eq!(
            circuit.num_phases(),
            schedule.num_phases(),
            "schedule phase count must match the circuit"
        );
        let l = circuit.num_syncs();
        let mut incoming = vec![Vec::new(); l];
        let mut outgoing = vec![Vec::new(); l];
        for e in circuit.edges() {
            let src = circuit.sync(e.from);
            let dst = circuit.sync(e.to);
            let shift = schedule.shift(src.phase, dst.phase);
            incoming[e.to.index()].push(Arc {
                source: e.from.index(),
                weight: src.dq + e.max_delay + shift,
                weight_early: src.dq + early_delay(e) + shift,
            });
            outgoing[e.from.index()].push(e.to.index());
        }
        for out in &mut outgoing {
            out.sort_unstable();
            out.dedup();
        }
        let is_ff = circuit
            .syncs()
            .map(|(_, s)| s.kind == SyncKind::FlipFlop)
            .collect();
        PropagationSystem {
            incoming,
            outgoing,
            is_ff,
        }
    }

    /// Number of synchronizers.
    pub fn len(&self) -> usize {
        self.incoming.len()
    }

    /// `true` when the system has no synchronizers.
    pub fn is_empty(&self) -> bool {
        self.incoming.is_empty()
    }

    /// The arrival time `A_i` (eq. 14) given departures `d`:
    /// `max_j (d_j + w_ji)`, or `−∞` for synchronizers with no fan-in.
    pub fn arrival(&self, d: &[f64], i: usize) -> f64 {
        self.incoming[i]
            .iter()
            .map(|a| d[a.source] + a.weight)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// All arrival times.
    pub fn arrivals(&self, d: &[f64]) -> Vec<f64> {
        (0..self.len()).map(|i| self.arrival(d, i)).collect()
    }

    /// The update function: `F_i(d) = max(0, A_i(d))` for latches, `0` for
    /// flip-flops (eq. 15 / 17).
    pub fn update(&self, d: &[f64], i: usize) -> f64 {
        if self.is_ff[i] {
            0.0
        } else {
            self.arrival(d, i).max(0.0)
        }
    }

    /// Jacobi iteration from `start` until fixpoint (the paper's Algorithm
    /// MLP steps 3–5), capped at `max_sweeps` full sweeps.
    pub fn jacobi(&self, start: &[f64], max_sweeps: usize) -> FixpointResult {
        let mut d = start.to_vec();
        let mut next = vec![0.0; d.len()];
        let mut residuals = Vec::new();
        for sweep in 0..max_sweeps {
            let mut delta = 0.0f64;
            for i in 0..d.len() {
                next[i] = self.update(&d, i);
                delta = delta.max((next[i] - d[i]).abs());
            }
            std::mem::swap(&mut d, &mut next);
            push_residual(&mut residuals, delta);
            if delta <= FIXPOINT_TOL {
                return FixpointResult {
                    departures: d,
                    iterations: sweep + 1,
                    converged: true,
                    residuals,
                };
            }
        }
        FixpointResult {
            departures: d,
            iterations: max_sweeps,
            converged: false,
            residuals,
        }
    }

    /// Gauss-Seidel iteration: like [`PropagationSystem::jacobi`] but each
    /// update immediately sees the sweep's earlier updates.
    pub fn gauss_seidel(&self, start: &[f64], max_sweeps: usize) -> FixpointResult {
        let mut d = start.to_vec();
        let mut residuals = Vec::new();
        for sweep in 0..max_sweeps {
            let mut delta = 0.0f64;
            for i in 0..d.len() {
                let v = self.update(&d, i);
                delta = delta.max((v - d[i]).abs());
                d[i] = v;
            }
            push_residual(&mut residuals, delta);
            if delta <= FIXPOINT_TOL {
                return FixpointResult {
                    departures: d,
                    iterations: sweep + 1,
                    converged: true,
                    residuals,
                };
            }
        }
        FixpointResult {
            departures: d,
            iterations: max_sweeps,
            converged: false,
            residuals,
        }
    }

    /// Event-driven worklist iteration: only recomputes departures whose
    /// fan-in changed. `max_events` bounds the processed work items.
    pub fn event_driven(&self, start: &[f64], max_events: usize) -> FixpointResult {
        let mut d = start.to_vec();
        let n = d.len();
        let mut queued = vec![true; n];
        let mut queue: std::collections::VecDeque<usize> = (0..n).collect();
        let mut events = 0usize;
        let mut residuals = Vec::new();
        while let Some(i) = queue.pop_front() {
            queued[i] = false;
            events += 1;
            if events > max_events {
                return FixpointResult {
                    departures: d,
                    iterations: events,
                    converged: false,
                    residuals,
                };
            }
            let v = self.update(&d, i);
            if (v - d[i]).abs() > FIXPOINT_TOL {
                push_residual(&mut residuals, (v - d[i]).abs());
                d[i] = v;
                for &dst in &self.outgoing[i] {
                    if !queued[dst] {
                        queued[dst] = true;
                        queue.push_back(dst);
                    }
                }
            }
        }
        FixpointResult {
            departures: d,
            iterations: events,
            converged: true,
            residuals,
        }
    }

    /// The *early-mode* arrival: `min_j (e_j + w^early_ji)`, or `+∞` for
    /// synchronizers with no fan-in (their data never changes).
    pub fn early_arrival(&self, e: &[f64], i: usize) -> f64 {
        self.incoming[i]
            .iter()
            .map(|a| e[a.source] + a.weight_early)
            .fold(f64::INFINITY, f64::min)
    }

    /// Early-mode update: the earliest instant (relative to its own phase
    /// start) at which a synchronizer's output can start *changing*:
    /// `max(0, min-arrival)` for latches (data arriving while closed
    /// changes the output at the opening edge), `0` for flip-flops.
    pub fn early_update(&self, e: &[f64], i: usize) -> f64 {
        if self.is_ff[i] {
            0.0
        } else {
            self.early_arrival(e, i).max(0.0)
        }
    }

    /// Computes the steady-state early-mode change times by iterating the
    /// early recurrence from the power-on state (every output first changes
    /// at its opening edge, `E = 0`) — exactly the recurrence the wave
    /// simulator executes, so the two agree by construction.
    ///
    /// The iteration is monotone non-decreasing. Divergence (no
    /// stabilization within the sweep budget) means the periodic data
    /// changes die out — the circuit settles to constants and nothing ever
    /// disturbs a captured value; callers should treat every early change
    /// time as `+∞` in that case.
    pub fn early_steady(&self, max_sweeps: usize) -> FixpointResult {
        let mut e = vec![0.0; self.len()];
        let mut next = vec![0.0; self.len()];
        for sweep in 0..max_sweeps {
            let mut changed = false;
            for i in 0..e.len() {
                let v = self.early_update(&e, i);
                // a finite→infinite transition is a change (the output turns
                // out never to change at all), as is any finite movement
                if v.is_finite() != e[i].is_finite()
                    || (v.is_finite() && (v - e[i]).abs() > FIXPOINT_TOL)
                {
                    changed = true;
                }
                next[i] = v;
            }
            std::mem::swap(&mut e, &mut next);
            if !changed {
                return FixpointResult {
                    departures: e,
                    iterations: sweep + 1,
                    converged: true,
                    residuals: Vec::new(),
                };
            }
        }
        FixpointResult {
            departures: e,
            iterations: max_sweeps,
            converged: false,
            residuals: Vec::new(),
        }
    }

    /// Least-fixpoint computation from `D = 0` with positive-loop detection,
    /// used by schedule *verification*.
    ///
    /// Iterates upward; with all loop gains ≤ 0 the iteration stabilizes
    /// within `l` sweeps, so a change in sweep `l + 1` proves a
    /// positive-gain loop. On divergence the offending loop (as synchronizer
    /// ids) is returned.
    pub fn least_fixpoint(&self) -> Result<FixpointResult, Vec<LatchId>> {
        let l = self.len();
        let mut d = vec![0.0; l];
        let mut next = vec![0.0; l];
        let mut pred: Vec<Option<usize>> = vec![None; l];
        let sweeps = l + 1;
        let mut witness = None;
        for sweep in 0..sweeps {
            let mut changed = false;
            next.copy_from_slice(&d);
            for i in 0..l {
                if self.is_ff[i] {
                    continue; // pinned at 0
                }
                let mut best = 0.0_f64;
                let mut best_pred = None;
                for a in &self.incoming[i] {
                    let v = d[a.source] + a.weight;
                    if v > best {
                        best = v;
                        best_pred = Some(a.source);
                    }
                }
                if (best - d[i]).abs() > FIXPOINT_TOL {
                    changed = true;
                    next[i] = best;
                    pred[i] = best_pred;
                    witness = Some(i);
                }
            }
            std::mem::swap(&mut d, &mut next);
            if !changed {
                return Ok(FixpointResult {
                    departures: d,
                    iterations: sweep + 1,
                    converged: true,
                    residuals: Vec::new(),
                });
            }
        }
        // Still changing after l + 1 sweeps: trace the positive loop through
        // the predecessor chain of a node that changed last.
        let start = witness.unwrap_or(0);
        let mut seen = vec![false; l];
        let mut cursor = start;
        let mut chain = Vec::new();
        while !seen[cursor] {
            seen[cursor] = true;
            chain.push(cursor);
            match pred[cursor] {
                Some(p) => cursor = p,
                None => break,
            }
        }
        // `cursor` is the first repeated node (if the chain closed).
        let loop_ids = if let Some(pos) = chain.iter().position(|&x| x == cursor) {
            chain[pos..]
                .iter()
                .rev()
                .map(|&i| LatchId::new(i))
                .collect()
        } else {
            chain.into_iter().map(LatchId::new).collect()
        };
        Err(loop_ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smo_circuit::{CircuitBuilder, PhaseId};

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    use smo_gen::paper::example1;

    /// The paper's Fig. 6(c) data point: Δ41 = 120, Tc = 140, symmetric
    /// 70/70 split; departures are 60/90/140+? — with the paper's schedule
    /// (s1 = 0, s2 = 70, T1 = T2 = 70) the steady state departures are
    /// L1: 60, L2: 20, L3: 0, L4: 70 relative to their own phases… we only
    /// check the fixpoint property itself here; the paper's exact numbers
    /// are asserted in the MLP tests where the LP picks the schedule.
    fn symmetric_system(d41: f64, tc: f64) -> PropagationSystem {
        let sched = ClockSchedule::symmetric(2, tc, 0.0).unwrap();
        PropagationSystem::new(&example1(d41), &sched)
    }

    #[test]
    fn least_fixpoint_converges_when_loop_gain_nonpositive() {
        let sys = symmetric_system(60.0, 100.0);
        let fp = sys.least_fixpoint().unwrap();
        assert!(fp.converged);
        // fixpoint property
        for i in 0..sys.len() {
            assert!((sys.update(&fp.departures, i) - fp.departures[i]).abs() < 1e-9);
        }
        // known values from the §V discussion (Tc = 100 balanced case):
        assert_eq!(fp.departures, vec![40.0, 20.0, 0.0, 20.0]);
    }

    #[test]
    fn least_fixpoint_detects_positive_loop() {
        // Tc = 80 is below the loop's average delay (100): gain > 0.
        let sys = symmetric_system(60.0, 80.0);
        let loop_ids = sys.least_fixpoint().unwrap_err();
        assert!(!loop_ids.is_empty());
        assert!(loop_ids.len() <= 4);
    }

    #[test]
    fn all_three_solvers_agree_from_above() {
        let sys = symmetric_system(60.0, 110.0);
        let start = vec![50.0; 4];
        let j = sys.jacobi(&start, 10_000);
        let g = sys.gauss_seidel(&start, 10_000);
        let e = sys.event_driven(&start, 1_000_000);
        assert!(j.converged && g.converged && e.converged);
        for i in 0..4 {
            assert!((j.departures[i] - g.departures[i]).abs() < 1e-7);
            assert!((j.departures[i] - e.departures[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn flip_flops_stay_pinned_at_zero() {
        let mut b = CircuitBuilder::new(2);
        let f = b.add_flip_flop("F", p(1), 1.0, 2.0);
        let l = b.add_latch("L", p(2), 1.0, 2.0);
        b.connect(f, l, 5.0);
        b.connect(l, f, 5.0);
        let c = b.build().unwrap();
        let sched = ClockSchedule::symmetric(2, 40.0, 0.0).unwrap();
        let sys = PropagationSystem::new(&c, &sched);
        let fp = sys.least_fixpoint().unwrap();
        assert_eq!(fp.departures[0], 0.0);
        // L sees F depart at 0 + dq 2 + Δ 5 + S_{12} = -20 → waits: D = 0
        assert_eq!(fp.departures[1], 0.0);
        assert_eq!(sys.arrival(&fp.departures, 1), 2.0 + 5.0 - 20.0);
    }

    #[test]
    fn arrivals_match_definition() {
        let sys = symmetric_system(60.0, 100.0);
        let fp = sys.least_fixpoint().unwrap();
        let arr = sys.arrivals(&fp.departures);
        // A_1 = D4 + 10 + 60 + S_21 = 20 + 70 + (50 - 100) = 40
        assert!((arr[0] - 40.0).abs() < 1e-9);
        // no-fanin case
        let mut b = CircuitBuilder::new(1);
        b.add_latch("solo", p(1), 0.0, 1.0);
        let c = b.build().unwrap();
        let sched = ClockSchedule::symmetric(1, 10.0, 0.0).unwrap();
        let sys = PropagationSystem::new(&c, &sched);
        assert_eq!(sys.arrival(&[0.0], 0), f64::NEG_INFINITY);
        assert_eq!(sys.update(&[0.0], 0), 0.0);
    }

    #[test]
    fn event_driven_matches_on_random_starts() {
        let sys = symmetric_system(80.0, 120.0);
        for seed in 0..20u64 {
            // cheap deterministic pseudo-random start
            let start: Vec<f64> = (0..4)
                .map(|i| ((seed * 37 + i * 101) % 97) as f64)
                .collect();
            // only valid from above if start ≥ F(start); force that by one
            // big constant
            let start: Vec<f64> = start.iter().map(|v| v + 500.0).collect();
            let j = sys.jacobi(&start, 100_000);
            let e = sys.event_driven(&start, 10_000_000);
            assert!(j.converged && e.converged);
            for i in 0..4 {
                assert!(
                    (j.departures[i] - e.departures[i]).abs() < 1e-6,
                    "seed {seed}: {:?} vs {:?}",
                    j.departures,
                    e.departures
                );
            }
        }
    }

    #[test]
    fn early_steady_converges_with_ff_sources() {
        // FF(φ1) → latch(φ2) → FF loop: changes originate at the FF edge.
        let mut b = CircuitBuilder::new(2);
        let f = b.add_flip_flop("F", p(1), 1.0, 2.0);
        let l = b.add_latch("L", p(2), 1.0, 2.0);
        b.connect_min_max(f, l, 3.0, 5.0);
        b.connect_min_max(l, f, 3.0, 5.0);
        let c = b.build().unwrap();
        let sched = ClockSchedule::symmetric(2, 40.0, 0.0).unwrap();
        let sys = PropagationSystem::new(&c, &sched);
        let fp = sys.early_steady(10);
        assert!(fp.converged);
        // F changes at its edge; L's earliest change = max(0, 0+2+3-20) = 0
        assert_eq!(fp.departures, vec![0.0, 0.0]);
        // early arrivals use min weights: at L: 2+3-20 = -15
        assert!((sys.early_arrival(&fp.departures, 1) + 15.0).abs() < 1e-9);
    }

    #[test]
    fn early_steady_diverges_when_changes_die_out() {
        // all-latch ring whose early gains are positive: each wave the
        // change happens later — the data settles and stops changing.
        let mut b = CircuitBuilder::new(2);
        let a = b.add_latch("A", p(1), 1.0, 2.0);
        let c2 = b.add_latch("B", p(2), 1.0, 2.0);
        // min delays so large the early loop gain is positive
        b.connect_min_max(a, c2, 30.0, 30.0);
        b.connect_min_max(c2, a, 30.0, 30.0);
        let c = b.build().unwrap();
        let sched = ClockSchedule::symmetric(2, 50.0, 0.0).unwrap();
        let sys = PropagationSystem::new(&c, &sched);
        let fp = sys.early_steady(sys.len() + 1);
        assert!(!fp.converged, "{fp:?}");
    }

    #[test]
    fn early_arrival_is_infinite_without_fanin() {
        let mut b = CircuitBuilder::new(1);
        b.add_latch("solo", p(1), 0.0, 1.0);
        let c = b.build().unwrap();
        let sched = ClockSchedule::symmetric(1, 10.0, 0.0).unwrap();
        let sys = PropagationSystem::new(&c, &sched);
        assert_eq!(sys.early_arrival(&[0.0], 0), f64::INFINITY);
        assert_eq!(sys.early_update(&[0.0], 0), f64::INFINITY);
        let fp = sys.early_steady(5);
        assert!(fp.converged);
        assert_eq!(fp.departures[0], f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "phase count")]
    fn mismatched_schedule_panics() {
        let c = example1(60.0);
        let sched = ClockSchedule::symmetric(3, 90.0, 0.0).unwrap();
        let _ = PropagationSystem::new(&c, &sched);
    }
}
