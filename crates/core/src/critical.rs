//! Critical-segment analysis.
//!
//! The paper observes (§V, Example 2 discussion) that in latch-controlled
//! circuits "the notion of a critical path is clearly inadequate … the
//! circuit has several critical combinational delay *segments* which may be
//! disjoint. The criticality of these segments … [is] directly related to
//! associated slack variables in the inequality constraints."
//!
//! This module extracts exactly that from the solved LP: an edge (or setup
//! requirement) is *critical* when its constraint row is binding (zero
//! slack) **and** carries a non-zero dual — increasing the corresponding
//! delay would increase the optimal cycle time at the rate given by the
//! dual. Maximal chains of consecutive critical edges are grouped into
//! segments.

use crate::error::TimingError;
use crate::model::{ConstraintKind, TimingModel};
use smo_circuit::{Circuit, EdgeId, LatchId};
use std::fmt;

/// Tolerance for "binding" classification.
const TOL: f64 = 1e-7;

/// One critical combinational edge with its sensitivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalEdge {
    /// The edge.
    pub edge: EdgeId,
    /// `d T_c / d Δ` for this edge's delay (the LP dual of its propagation
    /// row); `0 < sensitivity ≤ 1`.
    pub sensitivity: f64,
}

/// A maximal chain of consecutive critical edges.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalSegment {
    /// The edges of the segment, in signal-flow order.
    pub edges: Vec<EdgeId>,
}

/// Result of [`critical_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalReport {
    /// All critical edges with sensitivities, sorted by decreasing
    /// sensitivity.
    pub edges: Vec<CriticalEdge>,
    /// Synchronizers whose setup constraint is binding with non-zero dual.
    pub setup_critical: Vec<LatchId>,
    /// Maximal chains of consecutive critical edges.
    pub segments: Vec<CriticalSegment>,
}

impl CriticalReport {
    /// `true` iff `edge` appears among the critical edges.
    pub fn is_edge_critical(&self, edge: EdgeId) -> bool {
        self.edges.iter().any(|c| c.edge == edge)
    }
}

impl fmt::Display for CriticalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "critical edges ({}):", self.edges.len())?;
        for c in &self.edges {
            writeln!(
                f,
                "  edge #{}  dTc/dΔ = {:.4}",
                c.edge.index(),
                c.sensitivity
            )?;
        }
        writeln!(f, "setup-critical synchronizers:")?;
        for l in &self.setup_critical {
            writeln!(f, "  {l}")?;
        }
        writeln!(f, "segments ({}):", self.segments.len())?;
        for (i, s) in self.segments.iter().enumerate() {
            write!(f, "  segment {i}:")?;
            for e in &s.edges {
                write!(f, " #{}", e.index())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Solves the model's LP and classifies critical edges, setup constraints
/// and segments.
///
/// # Errors
///
/// Propagates LP failures from [`TimingModel::solve_lp`].
pub fn critical_report(
    circuit: &Circuit,
    model: &TimingModel,
) -> Result<CriticalReport, TimingError> {
    let sol = model.solve_lp()?;

    let mut edges = Vec::new();
    let mut setup_critical = Vec::new();
    for info in model.constraints() {
        match info.kind {
            ConstraintKind::Propagation | ConstraintKind::FlipFlopSetup => {
                let dual = sol.dual(info.row).abs();
                let slack = sol.slack(info.row).abs();
                if dual > TOL && slack < TOL {
                    edges.push(CriticalEdge {
                        edge: info.edge.expect("edge rows carry an edge id"),
                        sensitivity: dual,
                    });
                }
            }
            ConstraintKind::Setup
                if sol.dual(info.row).abs() > TOL && sol.slack(info.row).abs() < TOL =>
            {
                setup_critical.push(info.latch.expect("setup rows carry a latch id"));
            }
            _ => {}
        }
    }
    edges.sort_by(|a, b| {
        b.sensitivity
            .total_cmp(&a.sensitivity)
            .then(a.edge.cmp(&b.edge))
    });

    let segments = chain_segments(circuit, &edges);
    Ok(CriticalReport {
        edges,
        setup_critical,
        segments,
    })
}

/// Groups critical edges into maximal head-to-tail chains.
fn chain_segments(circuit: &Circuit, critical: &[CriticalEdge]) -> Vec<CriticalSegment> {
    use std::collections::{HashMap, HashSet};
    let set: HashSet<EdgeId> = critical.iter().map(|c| c.edge).collect();
    // successor map: edge -> a critical edge starting where it ends
    let mut by_source: HashMap<LatchId, Vec<EdgeId>> = HashMap::new();
    for &e in &set {
        by_source.entry(circuit.edge(e).from).or_default().push(e);
    }
    // heads: critical edges whose source latch has no incoming critical edge
    let targets: HashSet<LatchId> = set.iter().map(|&e| circuit.edge(e).to).collect();
    let mut heads: Vec<EdgeId> = set
        .iter()
        .copied()
        .filter(|&e| !targets.contains(&circuit.edge(e).from))
        .collect();
    heads.sort();

    let mut segments = Vec::new();
    let mut used: HashSet<EdgeId> = HashSet::new();
    let grow = |start: EdgeId, used: &mut HashSet<EdgeId>| {
        let mut chain = vec![start];
        used.insert(start);
        let mut cursor = circuit.edge(start).to;
        while let Some(nexts) = by_source.get(&cursor) {
            // follow an unused successor; stop at branches deterministically
            let Some(&next) = nexts.iter().find(|e| !used.contains(e)) else {
                break;
            };
            chain.push(next);
            used.insert(next);
            cursor = circuit.edge(next).to;
        }
        CriticalSegment { edges: chain }
    };
    for h in heads {
        if !used.contains(&h) {
            segments.push(grow(h, &mut used));
        }
    }
    // edges on pure cycles (no head) — start anywhere deterministic
    let mut rest: Vec<EdgeId> = set.difference(&used).copied().collect();
    rest.sort();
    for e in rest {
        if !used.contains(&e) {
            segments.push(grow(e, &mut used));
        }
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TimingModel;
    use smo_gen::paper::example1;

    #[test]
    fn borrowing_region_has_half_sensitivity() {
        // On Fig. 7's middle segment (20 ≤ Δ41 ≤ 100) the slope is ½: the
        // added delay is shared between the two cycles.
        let c = example1(60.0);
        let m = TimingModel::build(&c).unwrap();
        let report = critical_report(&c, &m).unwrap();
        let eid = c.fanout(c.find("L4").unwrap())[0];
        let ce = report
            .edges
            .iter()
            .find(|e| e.edge == eid)
            .expect("Δ41 edge should be critical in the borrowing region");
        assert!(
            (ce.sensitivity - 0.5).abs() < 1e-6,
            "sensitivity = {}",
            ce.sensitivity
        );
    }

    #[test]
    fn direct_region_has_unit_sensitivity() {
        // Beyond Δ41 = 100 the slope is 1 (no more sharing).
        let c = example1(120.0);
        let m = TimingModel::build(&c).unwrap();
        let report = critical_report(&c, &m).unwrap();
        let eid = c.fanout(c.find("L4").unwrap())[0];
        let ce = report.edges.iter().find(|e| e.edge == eid).unwrap();
        assert!(
            (ce.sensitivity - 1.0).abs() < 1e-6,
            "sensitivity = {}",
            ce.sensitivity
        );
    }

    #[test]
    fn flat_region_leaves_delta41_noncritical() {
        // For Δ41 < 20 the optimum is set elsewhere (Fig. 7 flat part).
        let c = example1(10.0);
        let m = TimingModel::build(&c).unwrap();
        let report = critical_report(&c, &m).unwrap();
        let eid = c.fanout(c.find("L4").unwrap())[0];
        assert!(!report.is_edge_critical(eid), "report: {report}");
    }

    #[test]
    fn segments_chain_consecutive_edges() {
        // In the borrowing region the whole loop is critical → one segment
        // containing all four edges (a cycle).
        let c = example1(60.0);
        let m = TimingModel::build(&c).unwrap();
        let report = critical_report(&c, &m).unwrap();
        let total: usize = report.segments.iter().map(|s| s.edges.len()).sum();
        assert_eq!(
            total,
            report.edges.len(),
            "every critical edge lies in exactly one segment"
        );
        assert!(!report.segments.is_empty());
    }

    #[test]
    fn display_is_informative() {
        let c = example1(60.0);
        let m = TimingModel::build(&c).unwrap();
        let report = critical_report(&c, &m).unwrap();
        let s = report.to_string();
        assert!(s.contains("critical edges"));
        assert!(s.contains("segments"));
    }
}
