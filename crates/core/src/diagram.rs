//! ASCII timing diagrams in the style of the paper's Figs. 6 and 11
//! (the "graphical output routines" of the initial implementation).
//!
//! [`render_schedule`] draws two complete cycles of a clock schedule, one
//! row per phase, with `█` for the active interval. [`render_solution`]
//! adds one strip per synchronizer showing when the latest data signal
//! arrives (`a`) and departs (`D`) within each cycle; a run of `·` between
//! the phase start and a pre-arrived signal's departure visualizes the
//! "gaps in the strips [that] indicate signals that arrive earlier than …
//! the enabling edge" of Fig. 6.

use crate::solution::TimingSolution;
use smo_circuit::{Circuit, ClockSchedule, PhaseId};
use std::fmt::Write as _;

/// Number of text columns used for one clock cycle.
const CYCLE_COLS: usize = 40;

fn col(t: f64, cycle: f64, total_cols: usize) -> usize {
    let span = 2.0 * cycle;
    let frac = (t.rem_euclid(span)) / span;
    ((frac * total_cols as f64) as usize).min(total_cols - 1)
}

/// Renders two cycles of `schedule`, one row per phase.
///
/// ```
/// use smo_circuit::ClockSchedule;
/// let sched = ClockSchedule::symmetric(2, 100.0, 10.0)?;
/// let art = smo_core::render_schedule(&sched);
/// assert!(art.contains("φ1"));
/// # Ok::<(), smo_circuit::CircuitError>(())
/// ```
pub fn render_schedule(schedule: &ClockSchedule) -> String {
    let mut out = String::new();
    let cycle = schedule.cycle();
    let total = 2 * CYCLE_COLS;
    let _ = writeln!(
        out,
        "Tc = {:.4}   (two cycles, 1 column = {:.4})",
        cycle,
        cycle / CYCLE_COLS as f64
    );
    if cycle <= 0.0 {
        return out;
    }
    for i in 0..schedule.num_phases() {
        let p = PhaseId::new(i);
        let mut row = vec!['░'; total];
        for rep in 0..2 {
            let s = schedule.start(p) + rep as f64 * cycle;
            let e = s + schedule.width(p);
            let c0 = (s / (2.0 * cycle) * total as f64).round() as usize;
            let c1 = (e / (2.0 * cycle) * total as f64).round() as usize;
            for cell in row.iter_mut().take(c1.min(total)).skip(c0.min(total)) {
                *cell = '█';
            }
            // phases may wrap past the second cycle's end
            if e > 2.0 * cycle {
                let wrap = ((e - 2.0 * cycle) / (2.0 * cycle) * total as f64).round() as usize;
                for cell in row.iter_mut().take(wrap.min(total)) {
                    *cell = '█';
                }
            }
        }
        let _ = writeln!(out, "{p} {}", row.into_iter().collect::<String>());
    }
    let mut axis = vec![' '; total];
    axis[0] = '0';
    axis[total / 2] = '|';
    let _ = writeln!(out, "   {}", axis.into_iter().collect::<String>());
    let _ = writeln!(out, "   0 = cycle start, | = {cycle:.4}");
    out
}

/// Renders the clock schedule of `solution` plus one strip per synchronizer
/// of `circuit`: `a` marks the (absolute) arrival of the latest input
/// signal, `D` the departure, `·` the wait between the two when the signal
/// arrived before the enabling edge.
///
/// # Panics
///
/// Panics if `solution` does not belong to `circuit` (length mismatch).
pub fn render_solution(circuit: &Circuit, solution: &TimingSolution) -> String {
    assert_eq!(
        circuit.num_syncs(),
        solution.departures().len(),
        "solution must belong to the circuit"
    );
    let schedule = solution.schedule();
    let cycle = schedule.cycle();
    let mut out = render_schedule(schedule);
    if cycle <= 0.0 {
        return out;
    }
    let total = 2 * CYCLE_COLS;
    for (id, s) in circuit.syncs() {
        let mut row = vec![' '; total];
        let dep_abs = schedule.start(s.phase) + solution.departure(id);
        let arr = solution.arrival(id);
        for rep in 0..2 {
            let off = rep as f64 * cycle;
            let dc = col(dep_abs + off, cycle, total);
            if arr.is_finite() {
                let arr_abs = schedule.start(s.phase) + arr;
                let ac = col(arr_abs + off, cycle, total);
                // wait region (signal arrived before the phase opened)
                if arr < 0.0 {
                    let sc = col(schedule.start(s.phase) + off, cycle, total);
                    let (lo, hi) = (ac.min(sc), sc.max(ac));
                    for cell in row.iter_mut().take(hi).skip(lo) {
                        if *cell == ' ' {
                            *cell = '·';
                        }
                    }
                }
                row[ac] = 'a';
            }
            row[dc] = 'D';
        }
        let _ = writeln!(
            out,
            "{:>3} {}  D={:.4} a={}",
            format!("{id}"),
            row.iter().collect::<String>(),
            solution.departure(id),
            if arr.is_finite() {
                format!("{arr:.4}")
            } else {
                "-∞".into()
            }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::min_cycle_time;
    use smo_circuit::CircuitBuilder;

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    #[test]
    fn schedule_render_shows_all_phases() {
        let sched = ClockSchedule::symmetric(3, 90.0, 5.0).unwrap();
        let art = render_schedule(&sched);
        assert!(art.contains("φ1"));
        assert!(art.contains("φ2"));
        assert!(art.contains("φ3"));
        assert!(art.contains('█'));
        // two cycles → roughly 2/3 of each row inactive for k = 3
        let active = art.matches('█').count();
        assert!(active > 0);
    }

    #[test]
    fn zero_cycle_schedule_renders_without_panic() {
        let sched = ClockSchedule::new(0.0, vec![0.0], vec![0.0]).unwrap();
        let art = render_schedule(&sched);
        assert!(art.contains("Tc"));
    }

    #[test]
    fn solution_render_marks_departures() {
        let mut b = CircuitBuilder::new(2);
        let a = b.add_latch("A", p(1), 10.0, 10.0);
        let c2 = b.add_latch("B", p(2), 10.0, 10.0);
        b.connect(a, c2, 20.0);
        b.connect(c2, a, 60.0);
        let c = b.build().unwrap();
        let sol = min_cycle_time(&c).unwrap();
        let art = render_solution(&c, &sol);
        assert!(art.contains("L1"));
        assert!(art.contains('D'));
        assert!(art.contains("a="));
    }

    #[test]
    #[should_panic(expected = "belong")]
    fn mismatched_solution_panics() {
        let mut b = CircuitBuilder::new(1);
        b.add_latch("A", p(1), 1.0, 1.0);
        let small = b.build().unwrap();
        let mut b = CircuitBuilder::new(1);
        b.add_latch("A", p(1), 1.0, 1.0);
        b.add_latch("B", p(1), 1.0, 1.0);
        let big = b.build().unwrap();
        let sol = min_cycle_time(&big).unwrap();
        let _ = render_solution(&small, &sol);
    }
}
