//! The difference-constraint fast path: graph algorithms for the SMO
//! timing LP.
//!
//! Under the variable recombination `E_p = s_p + T_p` (absolute phase
//! end) and `u_i = s_{p_i} + D_i` (absolute departure), every row the
//! default [`TimingModel`] generates — C1–C3, L1, L2R, FF setup and
//! departure pinning, plus the optional extras — is a two-variable
//! difference constraint `x_a − x_b ≤ base + slope·T_c` over the node set
//! `{s_p} ∪ {E_p} ∪ {u_i}`. This module builds that mapping
//! ([`variable_images`]), routes pure-difference models to the
//! shortest-path solver of [`smo_lp::DifferenceSystem`] (Bellman–Ford
//! feasibility, Lawler's exact min-cycle-ratio `T_c*`), and hands mixed
//! models back to the simplex with a crossover warm start
//! ([`smo_lp::Problem::basis_from_point`]).
//!
//! The fast path never weakens the engine's verification story:
//!
//! * an optimal graph solve carries a [`GraphCertificate`] — the row
//!   arithmetic of the critical cycle re-checked against the raw LP rows,
//!   the graph analogue of the simplex path's KKT
//!   [`Certificate`](smo_lp::Certificate);
//! * an infeasible graph solve surfaces the negative cycle as a Farkas
//!   vector checked by [`smo_lp::certifies_infeasibility`] and named in
//!   paper vocabulary (C1/C3/L1/…), exactly like
//!   [`diagnose_infeasibility`](crate::diagnose_infeasibility);
//! * any numerical doubt (an uncheckable certificate, a stalled
//!   iteration) falls back to the certified simplex path under
//!   [`Backend::Auto`].

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::error::TimingError;
use crate::mlp::UpdateMode;
use crate::model::TimingModel;
use crate::solution::TimingSolution;
use smo_circuit::{Circuit, ClockSchedule, LatchId, PhaseId};
use smo_lp::{
    classify, Classification, DifferenceSystem, FixedParamOutcome, GraphInfeasibility,
    MinParamOutcome, ParamLowerWitness, Problem, Sense, SolveBudget, Tol, VarImage,
};

/// Which solver backs [`min_cycle_time_with`](crate::min_cycle_time_with).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Route difference-only models to the graph solver, warm-start the
    /// simplex from the graph schedule on mixed models, and fall back to
    /// the certified LP path on any numerical doubt.
    Auto,
    /// Graph solver only; models with rows outside the difference
    /// fragment are rejected with
    /// [`TimingError::InvalidOptions`](crate::TimingError).
    Graph,
    /// The simplex path of PRs 1–5, unchanged. The library default, so
    /// existing callers see bit-identical behavior.
    #[default]
    Lp,
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Backend::Auto),
            "graph" => Ok(Backend::Graph),
            "lp" => Ok(Backend::Lp),
            other => Err(format!(
                "unknown backend `{other}` (expected auto, graph or lp)"
            )),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Auto => write!(f, "auto"),
            Backend::Graph => write!(f, "graph"),
            Backend::Lp => write!(f, "lp"),
        }
    }
}

/// The variable recombination that turns the SMO model into a
/// difference-constraint system: one [`VarImage`] per LP variable.
///
/// Node numbering (with `k` phases and `l` synchronizers): node `p` is
/// the phase start `s_p`, node `k + p` the phase end `E_p = s_p + T_p`,
/// node `2k + i` the absolute departure `u_i = s_{p_i} + D_i`. `T_c` is
/// the parameter `λ`.
pub fn variable_images(circuit: &Circuit, model: &TimingModel) -> Vec<VarImage> {
    let vars = model.vars();
    let k = vars.num_phases();
    let l = vars.num_latches();
    let mut images = vec![VarImage::Param; model.problem().num_vars()];
    images[vars.tc().index()] = VarImage::Param;
    for p in 0..k {
        let ph = PhaseId::new(p);
        images[vars.start(ph).index()] = VarImage::Node(p);
        images[vars.width(ph).index()] = VarImage::Diff(k + p, p);
    }
    for i in 0..l {
        let id = LatchId::new(i);
        let p = circuit.sync(id).phase.index();
        images[vars.departure(id).index()] = VarImage::Diff(2 * k + i, p);
    }
    images
}

/// Classifies every row of the model under [`variable_images`] — the
/// static-analysis pass behind the fast path, also surfaced per paper
/// family by `smo analyze`.
///
/// # Errors
///
/// [`TimingError::Lp`] only on an internal dimension mismatch.
pub fn classify_model(
    circuit: &Circuit,
    model: &TimingModel,
) -> Result<Classification, TimingError> {
    let images = variable_images(circuit, model);
    Ok(classify(model.problem(), &images)?)
}

/// Does a feasible schedule exist at the given cycle time, by Bellman–Ford
/// on the difference graph? Returns `None` when the model has rows outside
/// the difference fragment (the graph alone cannot decide).
///
/// # Errors
///
/// [`TimingError`] if the model cannot be built for `circuit`.
pub fn graph_feasible_at(circuit: &Circuit, cycle: f64) -> Result<Option<bool>, TimingError> {
    graph_feasible_at_within(circuit, cycle, &SolveBudget::UNLIMITED)
}

/// [`graph_feasible_at`] under a wall-clock / iteration budget: the
/// Bellman–Ford sweep aborts with [`smo_lp::LpError::Budget`] (wrapped in
/// [`TimingError::Lp`]) when the budget expires, so daemon-style callers
/// can bound even the feasibility probe.
///
/// # Errors
///
/// As [`graph_feasible_at`], plus the budget error above.
pub fn graph_feasible_at_within(
    circuit: &Circuit,
    cycle: f64,
    budget: &SolveBudget,
) -> Result<Option<bool>, TimingError> {
    let model = TimingModel::build(circuit)?;
    let images = variable_images(circuit, &model);
    let cls = classify(model.problem(), &images)?;
    if !cls.is_pure() {
        return Ok(None);
    }
    let sys = DifferenceSystem::build(model.problem(), &images, &cls)?;
    let (lo, hi) = sys.param_range();
    if cycle < lo - Tol::FEAS.abs_for(lo) || cycle > hi + Tol::FEAS.abs_for(hi) {
        return Ok(Some(false));
    }
    Ok(Some(matches!(
        sys.feasible_at(cycle, budget)?,
        FixedParamOutcome::Feasible { .. }
    )))
}

/// Independent optimality check of a graph solve, the analogue of the
/// KKT [`Certificate`](smo_lp::Certificate) on the simplex path.
///
/// Validity means two things were re-derived from the raw LP rows with no
/// reference to the graph solver: *achievability* (the returned schedule
/// satisfies every constraint row within [`Tol::FEAS`]) and *minimality*
/// (the critical cycle's row multipliers aggregate — by plain row
/// arithmetic over the variable box — to a proof that `T_c ≥ T_c*`; or
/// `T_c*` sits on the model's declared cycle-time lower bound).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphCertificate {
    tc: f64,
    implied_lower: f64,
    max_violation: f64,
    witness_rows: usize,
    valid: bool,
}

impl GraphCertificate {
    /// `true` when both the achievability and the minimality re-checks
    /// passed.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// The certified optimal cycle time.
    pub fn tc(&self) -> f64 {
        self.tc
    }

    /// The lower bound on `T_c` re-derived from the witness rows (equals
    /// [`GraphCertificate::tc`] up to tolerance when valid).
    pub fn implied_lower(&self) -> f64 {
        self.implied_lower
    }

    /// Worst relative constraint violation of the returned schedule
    /// (comparable against [`Tol::FEAS`]`.rel()`).
    pub fn max_violation(&self) -> f64 {
        self.max_violation
    }

    /// Number of constraint rows on the critical cycle (zero when `T_c*`
    /// sits on the declared lower bound).
    pub fn witness_rows(&self) -> usize {
        self.witness_rows
    }
}

impl std::fmt::Display for GraphCertificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (Tc >= {:.6} from {} critical row(s), worst residual {:.2e})",
            if self.valid { "valid" } else { "INVALID" },
            self.implied_lower,
            self.witness_rows,
            self.max_violation
        )
    }
}

/// What [`attempt`] produced.
pub(crate) enum FastPathOutcome {
    /// The model was pure-difference and solved exactly on the graph.
    Solved(Box<TimingSolution>),
    /// The model has rows outside the difference fragment; the simplex
    /// must run, warm-started from the graph relaxation's schedule when
    /// one was obtained.
    WarmStart(Option<smo_lp::Basis>),
}

/// Runs the fast path on a freshly built model.
///
/// # Errors
///
/// [`TimingError::Infeasible`] with a machine-checked negative-cycle
/// certificate (also correct for mixed models — the difference subset's
/// rows are a subset of the full row set, so its Farkas vector condemns
/// the whole model); [`TimingError::Lp`] on numerical trouble inside the
/// graph solver (callers under [`Backend::Auto`] fall back to the
/// simplex).
pub(crate) fn attempt(
    circuit: &Circuit,
    model: &TimingModel,
    update: UpdateMode,
    budget: &SolveBudget,
) -> Result<FastPathOutcome, TimingError> {
    let p = model.problem();
    let images = variable_images(circuit, model);
    let cls = classify(p, &images)?;
    let sys = DifferenceSystem::build(p, &images, &cls)?;
    let pure = cls.is_pure();
    match sys.minimize_param(budget)? {
        MinParamOutcome::Infeasible(cert) => {
            if cert.check(p) {
                Err(infeasibility_error(circuit, model, &cert))
            } else if pure {
                // A pure system whose certificate fails the independent
                // check is numerical trouble, not a verdict.
                Err(TimingError::Lp(smo_lp::LpError::Numerical {
                    context: "graph negative-cycle certificate failed its independent check".into(),
                }))
            } else {
                Ok(FastPathOutcome::WarmStart(None))
            }
        }
        MinParamOutcome::Optimal {
            lambda,
            potentials,
            witness,
        } => {
            let x = reconstruct_point(circuit, model, lambda, &potentials);
            if !pure {
                // Mixed mode: the graph relaxation's schedule seeds the
                // simplex through the crossover; a failed crossover just
                // means a cold start.
                return Ok(FastPathOutcome::WarmStart(p.basis_from_point(&x).ok()));
            }
            let solution =
                build_solution(circuit, model, update, lambda, &x, witness.as_ref(), &sys)?;
            Ok(FastPathOutcome::Solved(Box::new(solution)))
        }
    }
}

/// Reconstructs the canonical graph schedule at a *fixed* cycle time:
/// Bellman–Ford potentials of the difference system at `λ = tc`, mapped
/// back through [`reconstruct_point`]. The potentials are origin-normalized
/// shortest-path distances, so the result is a deterministic function of
/// `(circuit, tc)` alone — the race analysis relies on this to make hold
/// slacks backend-independent (graph and LP solves of the same circuit
/// agree on `T_c*` to within [`Tol::TIGHT`], hence on this schedule).
///
/// Returns `Ok(None)` when the model has rows outside the difference
/// fragment (the caller must fall back to a canonicalized LP solve at a
/// pinned cycle time).
///
/// # Errors
///
/// [`TimingError::Infeasible`] when no schedule exists at `tc` (with the
/// machine-checked negative-cycle certificate named in paper vocabulary).
pub(crate) fn schedule_at(
    circuit: &Circuit,
    model: &TimingModel,
    tc: f64,
    budget: &SolveBudget,
) -> Result<Option<ClockSchedule>, TimingError> {
    let p = model.problem();
    let images = variable_images(circuit, model);
    let cls = classify(p, &images)?;
    if !cls.is_pure() {
        return Ok(None);
    }
    let sys = DifferenceSystem::build(p, &images, &cls)?;
    let (lo, hi) = sys.param_range();
    if tc < lo - Tol::FEAS.abs_for(lo) || tc > hi + Tol::FEAS.abs_for(hi) {
        return Err(TimingError::Infeasible {
            reason: format!(
                "cycle time {tc} is outside the model's declared parameter range [{lo}, {hi}]"
            ),
        });
    }
    match sys.feasible_at(tc, budget)? {
        FixedParamOutcome::Feasible { potentials } => {
            let x = reconstruct_point(circuit, model, tc, &potentials);
            let vars = model.vars();
            let k = vars.num_phases();
            let starts: Vec<f64> = (0..k)
                .map(|p| x[vars.start(PhaseId::new(p)).index()])
                .collect();
            let widths: Vec<f64> = (0..k)
                .map(|p| x[vars.width(PhaseId::new(p)).index()])
                .collect();
            Ok(Some(
                ClockSchedule::new(tc, starts, widths).map_err(TimingError::Circuit)?,
            ))
        }
        FixedParamOutcome::NegativeCycle(cycle) => Err(TimingError::Infeasible {
            reason: format!(
                "no feasible schedule at cycle time {tc}: negative constraint cycle \
                 over {} row(s) (minimum feasible cycle time {})",
                cycle.rows().len(),
                cycle
                    .min_feasible_lambda()
                    .map_or_else(|| "unbounded".to_string(), |l| format!("{l:.6}")),
            ),
        }),
    }
}

/// Maps graph node potentials back to an LP-variable point, with the same
/// clamping discipline as
/// [`TimingModel::extract_schedule`](crate::TimingModel::extract_schedule):
/// tiny negatives to zero, starts monotone, everything capped at the
/// cycle.
fn reconstruct_point(
    circuit: &Circuit,
    model: &TimingModel,
    lambda: f64,
    potentials: &[f64],
) -> Vec<f64> {
    let vars = model.vars();
    let k = vars.num_phases();
    let clamp = |v: f64| if v.abs() < 1e-9 { 0.0 } else { v.max(0.0) };
    let mut starts: Vec<f64> = (0..k).map(|p| clamp(potentials[p]).min(lambda)).collect();
    for i in 1..k {
        if starts[i] < starts[i - 1] {
            starts[i] = starts[i - 1];
        }
    }
    let mut x = vec![0.0; model.problem().num_vars()];
    x[vars.tc().index()] = lambda;
    for p in 0..k {
        let ph = PhaseId::new(p);
        x[vars.start(ph).index()] = starts[p];
        x[vars.width(ph).index()] = clamp(potentials[k + p] - potentials[p]).min(lambda);
    }
    for i in 0..vars.num_latches() {
        let id = LatchId::new(i);
        let p = circuit.sync(id).phase.index();
        x[vars.departure(id).index()] = clamp(potentials[2 * k + i] - potentials[p]);
    }
    x
}

/// Assembles the [`TimingSolution`] for a pure-difference optimum:
/// schedule from the potentials, departures slid to the nonlinear
/// fixpoint (MLP step 2, same as the LP path), and the independently
/// re-checked [`GraphCertificate`].
fn build_solution(
    circuit: &Circuit,
    model: &TimingModel,
    update: UpdateMode,
    lambda: f64,
    x: &[f64],
    witness: Option<&ParamLowerWitness>,
    sys: &DifferenceSystem,
) -> Result<TimingSolution, TimingError> {
    let vars = model.vars();
    let k = vars.num_phases();
    let starts: Vec<f64> = (0..k)
        .map(|p| x[vars.start(PhaseId::new(p)).index()])
        .collect();
    let widths: Vec<f64> = (0..k)
        .map(|p| x[vars.width(PhaseId::new(p)).index()])
        .collect();
    let schedule = ClockSchedule::new(lambda, starts, widths).map_err(TimingError::Circuit)?;
    let d0: Vec<f64> = (0..vars.num_latches())
        .map(|i| x[vars.departure(LatchId::new(i)).index()])
        .collect();
    let (departures, arrivals, update_iterations) =
        crate::mlp::slide_departures(circuit, &schedule, &d0, update)?;
    let certificate = certify(model, lambda, x, witness, sys.param_range().0);
    Ok(TimingSolution {
        schedule,
        departures,
        arrivals,
        update_iterations,
        lp_iterations: 0,
        num_constraints: model.num_constraints(),
        certificates: Vec::new(),
        graph_certificate: Some(certificate),
    })
}

/// Re-derives achievability and minimality from the raw LP rows (see
/// [`GraphCertificate`]).
fn certify(
    model: &TimingModel,
    lambda: f64,
    x: &[f64],
    witness: Option<&ParamLowerWitness>,
    param_lower: f64,
) -> GraphCertificate {
    let p = model.problem();
    // Achievability: every row holds at `x` within FEAS.
    let mut max_violation: f64 = 0.0;
    for info in model.constraints() {
        let (expr, sense, rhs) = p.constraint(info.row);
        let lhs = expr.eval(x);
        let scale = lhs.abs().max(rhs.abs());
        let viol = match sense {
            Sense::Le => Tol::FEAS.violation(lhs, rhs, scale),
            Sense::Ge => Tol::FEAS.violation(rhs, lhs, scale),
            Sense::Eq => Tol::FEAS
                .violation(lhs, rhs, scale)
                .max(Tol::FEAS.violation(rhs, lhs, scale)),
        };
        max_violation = max_violation.max(viol);
    }
    let feasible = max_violation <= Tol::FEAS.rel();
    // Minimality: either the witness rows aggregate to `T_c ≥ λ*`, or λ*
    // sits on the model's declared parameter lower bound.
    let (implied_lower, witness_rows, lower_ok) = match witness {
        None => (
            param_lower,
            0,
            lambda <= param_lower + Tol::FEAS.abs_for(param_lower),
        ),
        Some(w) => {
            let bound = witness_bound(p, model.vars().tc(), w);
            (
                bound,
                w.rows().len(),
                bound >= lambda - Tol::FEAS.abs_for(lambda),
            )
        }
    };
    GraphCertificate {
        tc: lambda,
        implied_lower,
        max_violation,
        witness_rows,
        valid: feasible && lower_ok,
    }
}

/// The lower bound on `T_c` that the witness rows prove, re-derived from
/// the rows and the variable box alone: aggregate the rows with their
/// multipliers (checking Farkas sign conventions), then relax every
/// non-`T_c` coefficient against its variable bound. Returns `−∞` when
/// the aggregation is unusable (wrong sign, unbounded relaxation, no
/// positive `T_c` coefficient).
fn witness_bound(p: &Problem, tc: smo_lp::VarId, witness: &ParamLowerWitness) -> f64 {
    let tol = Tol::TIGHT;
    let mut coef = vec![0.0; p.num_vars()];
    let mut vars: Vec<Option<smo_lp::VarId>> = vec![None; p.num_vars()];
    let mut rhs_agg = 0.0;
    let mut scale: f64 = 0.0;
    for &(c, m) in witness.rows() {
        let (expr, sense, rhs) = p.constraint(c);
        let ok = match sense {
            Sense::Le => m <= tol.rel(),
            Sense::Ge => m >= -tol.rel(),
            Sense::Eq => true,
        };
        if !ok {
            return f64::NEG_INFINITY;
        }
        for (v, a) in expr.iter() {
            coef[v.index()] += m * a;
            vars[v.index()] = Some(v);
            scale = scale.max((m * a).abs());
        }
        rhs_agg += m * rhs;
    }
    // The aggregate Σ coef·x ≥ rhs_agg holds for every feasible x. Move
    // everything except T_c to the right at its worst box value: on a
    // well-formed witness the node coefficients all cancel except
    // bound-arc residuals, which relax against the box below.
    let mut gamma = 0.0;
    let mut slack = 0.0;
    for (i, &cv) in coef.iter().enumerate() {
        if cv.abs() <= tol.abs_for(scale) {
            continue;
        }
        let Some(var) = vars[i] else {
            return f64::NEG_INFINITY;
        };
        if var == tc {
            gamma = cv;
            continue;
        }
        let (lo, up) = p.var_bounds(var);
        // sup over the box of cv·x_v.
        let sup = if cv > 0.0 { cv * up } else { cv * lo };
        if !sup.is_finite() {
            return f64::NEG_INFINITY;
        }
        slack += sup;
    }
    if gamma <= tol.abs_for(scale) {
        return f64::NEG_INFINITY;
    }
    (rhs_agg - slack) / gamma
}

/// Builds the [`TimingError::Infeasible`] for a machine-checked
/// negative-cycle certificate, naming the conflict in paper vocabulary
/// the way [`diagnose_infeasibility`](crate::diagnose_infeasibility)
/// does.
fn infeasibility_error(
    circuit: &Circuit,
    model: &TimingModel,
    cert: &GraphInfeasibility,
) -> TimingError {
    let mut families: Vec<String> = Vec::new();
    for &(c, _) in cert.rows() {
        let info = &model.constraints()[c.index()];
        let described = crate::diagnose::describe(circuit, model, info);
        let label = format!("[{}] {}", described.label, described.detail);
        if !families.contains(&label) {
            families.push(label);
        }
    }
    TimingError::Infeasible {
        reason: format!(
            "negative constraint cycle (machine-checked Farkas certificate over {} row(s)): {}",
            cert.rows().len(),
            families.join("; ")
        ),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::mlp::{min_cycle_time_with, MlpOptions};
    use crate::model::ConstraintOptions;
    use crate::propagation::PropagationSystem;
    use smo_gen::paper::example1;

    fn opts(backend: Backend) -> MlpOptions {
        MlpOptions {
            backend,
            ..Default::default()
        }
    }

    #[test]
    fn graph_backend_solves_example1_exactly() {
        let c = example1(80.0);
        let sol = min_cycle_time_with(&c, &opts(Backend::Graph)).unwrap();
        // Lawler's iteration lands on the exact critical ratio, no simplex.
        assert!(
            (sol.cycle_time() - 110.0).abs() < 1e-9,
            "{}",
            sol.cycle_time()
        );
        assert_eq!(sol.lp_iterations(), 0);
        let cert = sol.graph_certificate().expect("graph path must certify");
        assert!(cert.is_valid());
        assert!((cert.implied_lower() - 110.0).abs() < 1e-6);
        assert!(sol.certified());
        assert!(sol.to_string().contains("[certified]"));
        // The slid departures satisfy the nonlinear fixpoint (Theorem 1).
        let sys = PropagationSystem::new(&c, sol.schedule());
        for i in 0..c.num_syncs() {
            let expect = sys.update(sol.departures(), i);
            assert!((sol.departures()[i] - expect).abs() < 1e-7);
        }
    }

    #[test]
    fn auto_backend_agrees_with_lp_across_example1_sweep() {
        for d41 in [0.0, 20.0, 60.0, 80.0, 99.0, 100.0, 101.0, 120.0, 140.0] {
            let c = example1(d41);
            let lp = min_cycle_time_with(&c, &opts(Backend::Lp)).unwrap();
            let fast = min_cycle_time_with(&c, &opts(Backend::Auto)).unwrap();
            assert!(
                (lp.cycle_time() - fast.cycle_time()).abs() < 1e-7,
                "Δ41 = {d41}: lp {} vs graph {}",
                lp.cycle_time(),
                fast.cycle_time()
            );
            assert!(fast.graph_certificate().is_some(), "Δ41 = {d41}");
        }
    }

    #[test]
    fn default_models_are_pure_difference_systems() {
        let c = example1(80.0);
        let model = TimingModel::build(&c).unwrap();
        let cls = classify_model(&c, &model).unwrap();
        assert!(cls.is_pure());
        assert_eq!(cls.len(), model.num_constraints());
        assert!(cls.num_difference() > 0);
    }

    #[test]
    fn mixed_model_warm_starts_the_simplex() {
        let c = example1(80.0);
        let mut model = TimingModel::build(&c).unwrap();
        // A redundant non-difference row (sum of two widths): the fast
        // path must refuse to decide alone and hand back a crossover
        // basis for the simplex.
        let (w1, w2, tc) = {
            let vars = model.vars();
            (
                vars.width(PhaseId::new(0)),
                vars.width(PhaseId::new(1)),
                vars.tc(),
            )
        };
        let expr = smo_lp::LinExpr::from(w1) + w2 - tc - tc;
        model.problem_mut().constrain(expr, smo_lp::Sense::Le, 0.0);
        let outcome =
            attempt(&c, &model, UpdateMode::GaussSeidel, &SolveBudget::UNLIMITED).unwrap();
        let FastPathOutcome::WarmStart(basis) = outcome else {
            panic!("general row must not solve on the graph");
        };
        let basis = basis.expect("subset relaxation should cross over");
        let warm = model
            .solve_lp_from_basis(smo_lp::SimplexVariant::Dense, &basis)
            .unwrap();
        let cold = model.solve_lp().unwrap();
        assert!((warm.objective() - cold.objective()).abs() < 1e-9);
    }

    #[test]
    fn infeasible_cycle_cap_names_constraint_families() {
        let c = example1(80.0);
        let options = MlpOptions {
            backend: Backend::Graph,
            constraints: ConstraintOptions {
                max_cycle: Some(50.0),
                ..Default::default()
            },
            ..Default::default()
        };
        let err = min_cycle_time_with(&c, &options).unwrap_err();
        let TimingError::Infeasible { reason } = err else {
            panic!("expected infeasibility, got {err:?}");
        };
        assert!(
            reason.contains("negative constraint cycle"),
            "reason: {reason}"
        );
        assert!(reason.contains("machine-checked"), "reason: {reason}");
        // The conflict names at least one paper constraint family.
        assert!(
            ["C1", "C2", "C3", "L1", "cycle"]
                .iter()
                .any(|f| reason.contains(f)),
            "reason: {reason}"
        );
    }

    #[test]
    fn graph_feasible_at_separates_the_optimum() {
        let c = example1(80.0);
        assert_eq!(graph_feasible_at(&c, 110.0).unwrap(), Some(true));
        assert_eq!(graph_feasible_at(&c, 200.0).unwrap(), Some(true));
        assert_eq!(graph_feasible_at(&c, 100.0).unwrap(), Some(false));
    }

    #[test]
    fn backend_parses_and_displays() {
        for (s, b) in [
            ("auto", Backend::Auto),
            ("graph", Backend::Graph),
            ("lp", Backend::Lp),
        ] {
            assert_eq!(s.parse::<Backend>().unwrap(), b);
            assert_eq!(b.to_string(), s);
        }
        assert!("simplex".parse::<Backend>().is_err());
    }
}
