//! Baseline cycle-time algorithms the paper compares against.
//!
//! The paper's evaluation pits Algorithm MLP against the NRIP heuristic of
//! Dagenais & Rumin [3] (Figs. 7 and 9) and motivates the whole work against
//! the classical edge-triggered approximation (§I). NRIP's internals are in
//! the cited reference, not the paper, so this module provides three
//! documented stand-ins (see DESIGN.md, substitution 1):
//!
//! * [`edge_triggered`] — every synchronizer treated as an edge-triggered
//!   flip-flop sampling at its enabling edge: no transparency, no borrowing.
//!   This is the approximation §I criticises ("they may not produce the
//!   minimum cycle time").
//! * [`symmetric_clock`] — the best *evenly spaced, equal-width* clock. It
//!   reproduces NRIP's observable behaviour in the paper: implicit minimum
//!   phase width/separation constraints, optimal exactly when the loop's
//!   cycles are balanced (Δ41 = 60 ns in Example 1), suboptimal elsewhere.
//! * [`single_borrow`] — a Jouppi-style single borrowing iteration (§II):
//!   first solve with every latch departure pinned to its enabling edge
//!   (zero borrowing), then release only the latches on binding propagation
//!   constraints and solve once more.
//!
//! All three return schedules that are *feasible for the original latch
//! circuit* (each adds constraints to P2, never removes any), so their cycle
//! times are upper bounds on the MLP optimum.

use crate::error::TimingError;
use crate::mlp::{min_cycle_time_with, MlpOptions};
use crate::model::{ConstraintKind, ConstraintOptions, DeparturePinning, TimingModel};
use crate::solution::TimingSolution;
use smo_circuit::{Circuit, SyncKind};

/// A labelled baseline result.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Human-readable algorithm name.
    pub name: &'static str,
    /// The schedule and timing the baseline produced (feasible for the
    /// original circuit).
    pub solution: TimingSolution,
}

impl Baseline {
    /// The baseline's cycle time.
    pub fn cycle_time(&self) -> f64 {
        self.solution.cycle_time()
    }
}

/// Edge-triggered approximation: all synchronizers sample at their enabling
/// edge (`D_i = 0`), with phase widths still wide enough for latch setup.
///
/// # Errors
///
/// Propagates LP failures; infeasibility cannot arise for a valid circuit.
pub fn edge_triggered(circuit: &Circuit) -> Result<Baseline, TimingError> {
    // Pinning departures (rather than literally swapping latches for FFs)
    // keeps the latch setup rows D_i + Δ_DC ≤ T_p, so the resulting schedule
    // stays feasible for the real latch circuit.
    let options = MlpOptions {
        constraints: ConstraintOptions {
            pinning: DeparturePinning::All,
            ..Default::default()
        },
        ..Default::default()
    };
    let solution = min_cycle_time_with(circuit, &options)?;
    Ok(Baseline {
        name: "edge-triggered (no borrowing)",
        solution,
    })
}

/// Best evenly spaced, equal-width clock (NRIP-like; see module docs).
///
/// # Errors
///
/// Propagates LP failures.
pub fn symmetric_clock(circuit: &Circuit) -> Result<Baseline, TimingError> {
    let options = MlpOptions {
        constraints: ConstraintOptions {
            symmetric_clock: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let solution = min_cycle_time_with(circuit, &options)?;
    Ok(Baseline {
        name: "symmetric clock (NRIP-like)",
        solution,
    })
}

/// Jouppi-style single borrowing iteration (see module docs).
///
/// # Errors
///
/// Propagates LP failures.
pub fn single_borrow(circuit: &Circuit) -> Result<Baseline, TimingError> {
    // Pass 1: zero borrowing.
    let pinned = ConstraintOptions {
        pinning: DeparturePinning::All,
        ..Default::default()
    };
    let model = TimingModel::build_with(circuit, &pinned)?;
    let lp = model.solve_lp()?;

    // Latches on binding propagation rows get to borrow in pass 2.
    const TOL: f64 = 1e-7;
    let mut free = Vec::new();
    for info in model.constraints() {
        if info.kind == ConstraintKind::Propagation
            && lp.slack(info.row).abs() < TOL
            && lp.dual(info.row).abs() > TOL
        {
            if let Some(latch) = info.latch {
                if circuit.sync(latch).kind == SyncKind::Latch && !free.contains(&latch) {
                    free.push(latch);
                }
            }
        }
    }

    let options = MlpOptions {
        constraints: ConstraintOptions {
            pinning: DeparturePinning::AllExcept(free),
            ..Default::default()
        },
        ..Default::default()
    };
    let solution = min_cycle_time_with(circuit, &options)?;
    Ok(Baseline {
        name: "single borrowing iteration (Jouppi-style)",
        solution,
    })
}

/// Runs all three baselines.
///
/// # Errors
///
/// Propagates the first baseline failure.
pub fn all_baselines(circuit: &Circuit) -> Result<Vec<Baseline>, TimingError> {
    Ok(vec![
        edge_triggered(circuit)?,
        single_borrow(circuit)?,
        symmetric_clock(circuit)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::verify;
    use crate::min_cycle_time;
    use smo_gen::paper::example1;

    #[test]
    fn baselines_never_beat_mlp() {
        for d41 in [0.0, 40.0, 60.0, 80.0, 120.0] {
            let c = example1(d41);
            let optimal = min_cycle_time(&c).unwrap().cycle_time();
            for b in all_baselines(&c).unwrap() {
                assert!(
                    b.cycle_time() >= optimal - 1e-6,
                    "Δ41 = {d41}: {} found {} < optimal {optimal}",
                    b.name,
                    b.cycle_time()
                );
            }
        }
    }

    #[test]
    fn baseline_schedules_are_feasible_for_the_real_circuit() {
        for d41 in [40.0, 80.0, 120.0] {
            let c = example1(d41);
            for b in all_baselines(&c).unwrap() {
                let report = verify(&c, b.solution.schedule());
                assert!(
                    report.is_feasible(),
                    "Δ41 = {d41}: {} schedule infeasible: {:?}",
                    b.name,
                    report.violations()
                );
            }
        }
    }

    #[test]
    fn symmetric_matches_optimum_at_balanced_point() {
        // The §V observation about NRIP: optimal at Δ41 = 60, suboptimal
        // elsewhere.
        let c = example1(60.0);
        let sym = symmetric_clock(&c).unwrap();
        let optimal = min_cycle_time(&c).unwrap().cycle_time();
        assert!((sym.cycle_time() - optimal).abs() < 1e-6);

        let c = example1(80.0);
        let sym = symmetric_clock(&c).unwrap();
        let optimal = min_cycle_time(&c).unwrap().cycle_time();
        assert!(sym.cycle_time() > optimal + 1e-6);
    }

    #[test]
    fn single_borrow_improves_on_edge_triggered() {
        let c = example1(80.0);
        let et = edge_triggered(&c).unwrap();
        let sb = single_borrow(&c).unwrap();
        assert!(
            sb.cycle_time() <= et.cycle_time() + 1e-9,
            "single-borrow {} vs edge-triggered {}",
            sb.cycle_time(),
            et.cycle_time()
        );
    }

    #[test]
    fn edge_triggered_keeps_latch_setup_width() {
        let c = example1(80.0);
        let et = edge_triggered(&c).unwrap();
        for (_, s) in c.syncs() {
            assert!(et.solution.schedule().width(s.phase) >= s.setup - 1e-9);
        }
    }
}
