//! Schedule verification — the paper's *analysis* problem (§I): given a
//! circuit **and** a concrete clock schedule, decide whether all timing
//! constraints are satisfied, and report per-latch slack.
//!
//! With the clocks fixed, the propagation constraints L2 have a least
//! fixpoint computable by value iteration
//! ([`PropagationSystem::least_fixpoint`](crate::PropagationSystem::least_fixpoint));
//! the schedule is feasible iff
//!
//! 1. the fixpoint exists (no feedback loop has positive gain at this cycle
//!    time — otherwise departures grow without bound and the report names
//!    the offending loop),
//! 2. the clock constraints C1–C3 hold for the circuit's `K` matrix, and
//! 3. every setup constraint holds at the fixpoint.
//!
//! The optional short-path (hold) analysis — Unger's "early arrival"
//! problem, which the paper cites but does not treat — is available through
//! [`AnalysisOptions::check_hold`].

use crate::model::NonoverlapScope;
use crate::propagation::PropagationSystem;
use smo_circuit::{Circuit, ClockSchedule, EdgeId, LatchId, SyncKind};
use std::fmt;

/// Tolerance used when classifying violations.
const TOL: f64 = 1e-9;

/// Options for [`verify`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisOptions {
    /// Also run the short-path (hold) checks using the edges' `min_delay`
    /// and the synchronizers' `hold` parameters. Extension; off by default.
    pub check_hold: bool,
    /// Use the early-mode fixpoint (steady-state earliest change times)
    /// instead of the conservative assumption that every source releases
    /// new data right at its enabling edge. Never reports *more* violations
    /// than the conservative check. Only meaningful with `check_hold`.
    pub early_mode_hold: bool,
    /// Which edges require phase nonoverlap (must match the scope used when
    /// the schedule was designed).
    pub nonoverlap_scope: NonoverlapScope,
    /// Extra margin demanded of every setup check (clock skew allowance).
    pub setup_margin: f64,
}

/// One diagnosed constraint violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A clock constraint (C1–C3) fails for the given schedule.
    Clock {
        /// Explanation.
        reason: String,
    },
    /// Departures grow without bound around this loop — the cycle time is
    /// below the loop's average delay requirement.
    PositiveLoop {
        /// Synchronizers on the loop.
        latches: Vec<LatchId>,
    },
    /// A latch (or flip-flop) misses setup.
    Setup {
        /// The violating synchronizer.
        latch: LatchId,
        /// Negative slack (how late the data is).
        shortfall: f64,
    },
    /// A short-path hold violation on an edge (extension).
    Hold {
        /// The violating edge.
        edge: EdgeId,
        /// Negative margin (how early the new data arrives).
        shortfall: f64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Clock { reason } => write!(f, "clock constraint violated: {reason}"),
            Violation::PositiveLoop { latches } => {
                write!(f, "cycle time too small for loop:")?;
                for l in latches {
                    write!(f, " {l}")?;
                }
                Ok(())
            }
            Violation::Setup { latch, shortfall } => {
                write!(f, "setup violated at {latch} by {shortfall:.4}")
            }
            Violation::Hold { edge, shortfall } => {
                write!(
                    f,
                    "hold violated on edge #{} by {shortfall:.4}",
                    edge.index()
                )
            }
        }
    }
}

/// The verification report: feasibility, violations, and the steady-state
/// timing at the analysed schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    violations: Vec<Violation>,
    departures: Vec<f64>,
    arrivals: Vec<f64>,
    setup_slacks: Vec<f64>,
    hold_margins: Vec<Option<f64>>,
    early_departures: Option<Vec<f64>>,
    iterations: usize,
}

impl AnalysisReport {
    /// `true` iff the schedule satisfies every checked constraint.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }

    /// The diagnosed violations (empty iff feasible).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Steady-state departure times (meaningless if a
    /// [`Violation::PositiveLoop`] was diagnosed).
    pub fn departures(&self) -> &[f64] {
        &self.departures
    }

    /// Steady-state arrival times (`−∞` for elements without fan-in).
    pub fn arrivals(&self) -> &[f64] {
        &self.arrivals
    }

    /// Setup slack per synchronizer: `T_{p_i} − Δ_DC − D_i` for latches,
    /// `−(A_i + Δ_DC)` for flip-flops. Negative means violated; `+∞` for a
    /// flip-flop with no fan-in.
    pub fn setup_slacks(&self) -> &[f64] {
        &self.setup_slacks
    }

    /// Setup slack of one synchronizer.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn setup_slack(&self, id: LatchId) -> f64 {
        self.setup_slacks[id.index()]
    }

    /// Hold margin per edge (`None` when hold checking was disabled).
    /// Negative means violated.
    pub fn hold_margins(&self) -> &[Option<f64>] {
        &self.hold_margins
    }

    /// Steady-state earliest change times per synchronizer (relative to the
    /// own phase start), computed only when
    /// [`AnalysisOptions::early_mode_hold`] was set. `+∞` entries mean the
    /// output never changes in steady state.
    pub fn early_departures(&self) -> Option<&[f64]> {
        self.early_departures.as_deref()
    }

    /// Value-iteration sweeps used to reach the fixpoint.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The minimum setup slack across all synchronizers (the schedule's
    /// timing margin), or `+∞` for an empty circuit.
    pub fn worst_slack(&self) -> f64 {
        self.setup_slacks
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

/// Verifies `schedule` against `circuit`'s timing constraints with default
/// options.
pub fn verify(circuit: &Circuit, schedule: &ClockSchedule) -> AnalysisReport {
    verify_with(circuit, schedule, &AnalysisOptions::default())
}

/// [`verify`] with explicit [`AnalysisOptions`].
///
/// # Panics
///
/// Panics if the schedule's phase count differs from the circuit's.
pub fn verify_with(
    circuit: &Circuit,
    schedule: &ClockSchedule,
    options: &AnalysisOptions,
) -> AnalysisReport {
    let mut violations = Vec::new();
    let l = circuit.num_syncs();

    // --- clock constraints C1-C3 -----------------------------------------
    if let Err(e) = schedule.validate() {
        violations.push(Violation::Clock {
            reason: e.to_string(),
        });
    }
    for e in circuit.edges() {
        if options.nonoverlap_scope == NonoverlapScope::LatchDestinations
            && circuit.sync(e.to).kind != SyncKind::Latch
        {
            continue;
        }
        let pi = circuit.sync(e.from).phase;
        let pj = circuit.sync(e.to).phase;
        // s_i ≥ s_j + T_j − C_ji·Tc  (eq. 6)
        let c = if smo_circuit::ClockSpec::c_flag(pj, pi) {
            schedule.cycle()
        } else {
            0.0
        };
        let lhs = schedule.start(pi);
        let rhs = schedule.start(pj) + schedule.width(pj) - c;
        if lhs + TOL < rhs {
            let reason = format!(
                "nonoverlap: {pi} must start after {pj} ends (s{} = {} < {})",
                pi.number(),
                lhs,
                rhs
            );
            if !violations
                .iter()
                .any(|v| matches!(v, Violation::Clock { reason: r } if r == &reason))
            {
                violations.push(Violation::Clock { reason });
            }
        }
    }

    // --- departure fixpoint ----------------------------------------------
    let system = PropagationSystem::new(circuit, schedule);
    let (departures, iterations) = match system.least_fixpoint() {
        Ok(fp) => (fp.departures, fp.iterations),
        Err(loop_ids) => {
            violations.push(Violation::PositiveLoop { latches: loop_ids });
            return AnalysisReport {
                violations,
                departures: vec![f64::INFINITY; l],
                arrivals: vec![f64::INFINITY; l],
                setup_slacks: vec![f64::NEG_INFINITY; l],
                hold_margins: vec![None; circuit.num_edges()],
                early_departures: None,
                iterations: 0,
            };
        }
    };
    let arrivals = system.arrivals(&departures);

    // --- setup checks -----------------------------------------------------
    let mut setup_slacks = Vec::with_capacity(l);
    for (id, s) in circuit.syncs() {
        let slack = match s.kind {
            SyncKind::Latch => {
                schedule.width(s.phase) - s.setup - options.setup_margin - departures[id.index()]
            }
            SyncKind::FlipFlop => {
                let a = arrivals[id.index()];
                if a == f64::NEG_INFINITY {
                    f64::INFINITY
                } else {
                    -(a + s.setup + options.setup_margin)
                }
            }
        };
        if slack < -TOL {
            violations.push(Violation::Setup {
                latch: id,
                shortfall: -slack,
            });
        }
        setup_slacks.push(slack);
    }

    // --- hold checks (extension) -------------------------------------------
    let mut hold_margins = vec![None; circuit.num_edges()];
    let mut early_departures = None;
    if options.check_hold {
        // Early-mode source release times: either the steady-state earliest
        // change (early_mode_hold) or the conservative 0 (release at the
        // enabling edge).
        let early_dep: Vec<f64> = if options.early_mode_hold {
            let fp = system.early_steady(4 * l + 16);
            let values = if fp.converged {
                fp.departures
            } else {
                // The early iteration did not settle. Divergence normally
                // means the periodic data changes die out (each wave the
                // earliest change drifts later), but rather than rely on
                // that argument we fall back to the conservative model —
                // every source releases at its enabling edge — which can
                // only over-report violations, never miss one.
                vec![0.0; l]
            };
            early_departures = Some(values.clone());
            values
        } else {
            vec![0.0; l]
        };
        for (idx, e) in circuit.edges().iter().enumerate() {
            let src = circuit.sync(e.from);
            let dst = circuit.sync(e.to);
            // earliest new-data arrival at the destination, referenced to the
            // destination phase start of the *receiving* occurrence:
            let early = early_dep[e.from.index()]
                + src.dq
                + e.min_delay
                + schedule.shift(src.phase, dst.phase);
            // the destination must not be disturbed before (previous closing
            // edge) + hold:
            let deadline = match dst.kind {
                SyncKind::Latch => schedule.width(dst.phase) - schedule.cycle() + dst.hold,
                SyncKind::FlipFlop => dst.hold - schedule.cycle(),
            };
            let margin = early - deadline;
            if margin < -TOL {
                violations.push(Violation::Hold {
                    edge: EdgeId::new(idx),
                    shortfall: -margin,
                });
            }
            hold_margins[idx] = Some(margin);
        }
    }

    AnalysisReport {
        violations,
        departures,
        arrivals,
        setup_slacks,
        hold_margins,
        early_departures,
        iterations,
    }
}

/// Finds the minimum feasible cycle time for the *shape* of a given
/// schedule by bisection: the schedule is scaled uniformly until it barely
/// passes [`verify`].
///
/// This is a helper for heuristic baselines; the exact optimum over all
/// schedules is [`min_cycle_time`](crate::min_cycle_time).
///
/// Returns `None` if even `hi` times the shape fails verification.
pub fn min_cycle_for_shape(
    circuit: &Circuit,
    shape: &ClockSchedule,
    hi_factor: f64,
    tol: f64,
) -> Option<ClockSchedule> {
    let feasible = |factor: f64| {
        let sched = shape.scaled(factor);
        verify(circuit, &sched).is_feasible()
    };
    if !feasible(hi_factor) {
        return None;
    }
    let mut lo = 0.0_f64;
    let mut hi = hi_factor;
    while hi - lo > tol.max(1e-12) {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(shape.scaled(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smo_circuit::{CircuitBuilder, PhaseId, Synchronizer};

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    use smo_gen::paper::example1;

    #[test]
    fn balanced_symmetric_schedule_is_feasible() {
        let c = example1(60.0);
        let sched = ClockSchedule::symmetric(2, 100.0, 0.0).unwrap();
        let report = verify(&c, &sched);
        assert!(
            report.is_feasible(),
            "violations: {:?}",
            report.violations()
        );
        // L1 departs at 40 with T1 = 50 and setup 10 → slack 0 (critical)
        assert!(report.worst_slack().abs() < 1e-9);
    }

    #[test]
    fn undersized_cycle_reports_positive_loop() {
        let c = example1(60.0);
        let sched = ClockSchedule::symmetric(2, 80.0, 0.0).unwrap();
        let report = verify(&c, &sched);
        assert!(!report.is_feasible());
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::PositiveLoop { .. })));
    }

    #[test]
    fn slightly_small_cycle_reports_setup_violation() {
        // Tc = 95 > loop requirement (avg 100?) — no: avg loop = 100 means
        // Tc below 100 diverges. Use Tc = 100 with a gap that shrinks the
        // widths instead: phases [0,50) and [50,100) minus gap 15 → width 35
        // < D1 + setup = 50 → setup violation without divergence.
        let c = example1(60.0);
        let sched = ClockSchedule::symmetric(2, 100.0, 15.0).unwrap();
        let report = verify(&c, &sched);
        assert!(!report.is_feasible());
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::Setup { .. })));
    }

    #[test]
    fn overlapping_phases_flagged_by_k_matrix() {
        let c = example1(60.0);
        // phases overlap: φ1 = [0, 60), φ2 = [50, 100)
        let sched = ClockSchedule::new(100.0, vec![0.0, 50.0], vec![60.0, 50.0]).unwrap();
        let report = verify(&c, &sched);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::Clock { .. })));
    }

    #[test]
    fn verify_accepts_mlp_optimum() {
        for d41 in [0.0, 40.0, 80.0, 120.0] {
            let c = example1(d41);
            let sol = crate::min_cycle_time(&c).unwrap();
            let report = verify(&c, sol.schedule());
            assert!(
                report.is_feasible(),
                "Δ41 = {d41}: {:?}",
                report.violations()
            );
            // and shrinking the cycle by 1% must break it
            let shrunk = sol.schedule().scaled(0.99);
            assert!(!verify(&c, &shrunk).is_feasible(), "Δ41 = {d41}");
        }
    }

    #[test]
    fn ff_setup_slack_uses_arrival() {
        let mut b = CircuitBuilder::new(1);
        let f1 = b.add_flip_flop("F1", p(1), 1.0, 2.0);
        let f2 = b.add_flip_flop("F2", p(1), 1.0, 2.0);
        b.connect(f1, f2, 10.0);
        let c = b.build().unwrap();
        // Tc = 13 exactly meets setup; Tc = 12 misses by 1.
        let ok = ClockSchedule::new(13.0, vec![0.0], vec![6.0]).unwrap();
        assert!(verify(&c, &ok).is_feasible());
        let bad = ClockSchedule::new(12.0, vec![0.0], vec![6.0]).unwrap();
        let report = verify(&c, &bad);
        assert!(!report.is_feasible());
        match &report.violations()[0] {
            Violation::Setup { latch, shortfall } => {
                assert_eq!(latch.index(), 1);
                assert!((shortfall - 1.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
        // F1 has no fan-in → infinite slack
        assert_eq!(report.setup_slack(LatchId::new(0)), f64::INFINITY);
    }

    #[test]
    fn hold_check_flags_fast_paths() {
        // Two latches on overlapping... rather: same-phase FFs with a path
        // faster than the hold requirement.
        let mut b = CircuitBuilder::new(1);
        let f1 = b.add_sync(Synchronizer::flip_flop("F1", p(1), 1.0, 0.1));
        let f2 = b.add_sync(Synchronizer::flip_flop("F2", p(1), 1.0, 0.2).with_hold(1.0));
        b.connect_min_max(f1, f2, 0.3, 5.0);
        let c = b.build().unwrap();
        let sched = ClockSchedule::new(10.0, vec![0.0], vec![5.0]).unwrap();
        let opts = AnalysisOptions {
            check_hold: true,
            ..Default::default()
        };
        let report = verify_with(&c, &sched, &opts);
        // earliest arrival = dq 0.1 + min 0.3 = 0.4 after the edge; hold
        // needs 1.0 → shortfall 0.6
        let hold_violation = report
            .violations()
            .iter()
            .find_map(|v| match v {
                Violation::Hold { shortfall, .. } => Some(*shortfall),
                _ => None,
            })
            .expect("hold violation expected");
        assert!((hold_violation - 0.6).abs() < 1e-9);
        // margins are reported for every edge
        assert!(report.hold_margins().iter().all(Option::is_some));
    }

    #[test]
    fn hold_check_passes_with_enough_contamination_delay() {
        let mut b = CircuitBuilder::new(1);
        let f1 = b.add_sync(Synchronizer::flip_flop("F1", p(1), 1.0, 0.1));
        let f2 = b.add_sync(Synchronizer::flip_flop("F2", p(1), 1.0, 0.2).with_hold(1.0));
        b.connect_min_max(f1, f2, 2.0, 5.0);
        let c = b.build().unwrap();
        let sched = ClockSchedule::new(10.0, vec![0.0], vec![5.0]).unwrap();
        let opts = AnalysisOptions {
            check_hold: true,
            ..Default::default()
        };
        assert!(verify_with(&c, &sched, &opts).is_feasible());
    }

    #[test]
    fn early_mode_hold_is_never_more_pessimistic() {
        // latch chain with a slow upstream: the conservative check assumes
        // the source releases at its edge, early mode knows it releases
        // later — margins can only improve.
        let mut b = CircuitBuilder::new(2);
        let f = b.add_flip_flop("F", p(1), 0.5, 0.5);
        let a = b.add_sync(Synchronizer::latch("A", p(2), 0.5, 0.5).with_hold(0.0));
        let dst = b.add_sync(Synchronizer::latch("D", p(1), 0.5, 0.5).with_hold(4.0));
        b.connect_min_max(f, a, 10.5, 11.0); // A's data arrives late → releases late
        b.connect_min_max(a, dst, 0.5, 3.0);
        let c = b.build().unwrap();
        let sched = ClockSchedule::new(20.0, vec![0.0, 10.0], vec![9.0, 9.0]).unwrap();
        let conservative = verify_with(
            &c,
            &sched,
            &AnalysisOptions {
                check_hold: true,
                ..Default::default()
            },
        );
        let early = verify_with(
            &c,
            &sched,
            &AnalysisOptions {
                check_hold: true,
                early_mode_hold: true,
                ..Default::default()
            },
        );
        for (cm, em) in conservative.hold_margins().iter().zip(early.hold_margins()) {
            let (cm, em) = (cm.expect("checked"), em.expect("checked"));
            assert!(em >= cm - 1e-9, "early {em} vs conservative {cm}");
        }
        assert!(early.early_departures().is_some());
        // A's earliest release is strictly after its edge
        let e = early.early_departures().unwrap();
        assert!(e[1] > 0.0, "early departures: {e:?}");
    }

    #[test]
    fn early_mode_clears_a_false_conservative_hold_violation() {
        // Destination D (φ1) has a big hold requirement; the path A→D is
        // fast, BUT A cannot release early because its own data arrives
        // late. Conservative analysis flags it; early mode clears it.
        let mut b = CircuitBuilder::new(2);
        let f = b.add_flip_flop("F", p(1), 0.5, 0.5);
        let a = b.add_latch("A", p(2), 0.5, 0.5);
        let dst = b.add_sync(Synchronizer::latch("D", p(1), 0.5, 0.5).with_hold(3.0));
        b.connect_min_max(f, a, 8.0, 9.0);
        b.connect_min_max(a, dst, 0.1, 3.0);
        let c = b.build().unwrap();
        let sched = ClockSchedule::new(20.0, vec![0.0, 6.0], vec![5.0, 12.0]).unwrap();
        let conservative = verify_with(
            &c,
            &sched,
            &AnalysisOptions {
                check_hold: true,
                ..Default::default()
            },
        );
        let early = verify_with(
            &c,
            &sched,
            &AnalysisOptions {
                check_hold: true,
                early_mode_hold: true,
                ..Default::default()
            },
        );
        let cons_hold = conservative
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::Hold { .. }));
        let early_hold = early
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::Hold { .. }));
        assert!(cons_hold, "{:?}", conservative.violations());
        assert!(!early_hold, "{:?}", early.violations());
    }

    #[test]
    fn min_cycle_for_shape_brackets_the_optimum() {
        let c = example1(60.0);
        let shape = ClockSchedule::symmetric(2, 1.0, 0.0).unwrap();
        let sched = min_cycle_for_shape(&c, &shape, 1000.0, 1e-7).unwrap();
        // symmetric optimum at the balanced point equals the true optimum 100
        assert!(
            (sched.cycle() - 100.0).abs() < 1e-3,
            "Tc = {}",
            sched.cycle()
        );
        // and an impossible budget returns None
        assert!(min_cycle_for_shape(&c, &shape, 10.0, 1e-7).is_none());
    }
}
