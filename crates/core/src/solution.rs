//! The result of an optimal cycle-time calculation.

use smo_circuit::{ClockSchedule, LatchId};
use std::fmt;

/// An optimal clock schedule plus the steady-state signal timing that
/// realizes it — the output of [`min_cycle_time`](crate::min_cycle_time).
///
/// All per-latch times follow the paper's convention: they are *relative to
/// the beginning of the latch's controlling phase* `p_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingSolution {
    pub(crate) schedule: ClockSchedule,
    pub(crate) departures: Vec<f64>,
    pub(crate) arrivals: Vec<f64>,
    /// Sweeps taken by the MLP departure-update iteration (steps 3–5).
    pub(crate) update_iterations: usize,
    /// Simplex iterations taken by the LP solve (step 1).
    pub(crate) lp_iterations: usize,
    /// Number of constraint rows in the LP (the paper reports 91 for the
    /// GaAs example).
    pub(crate) num_constraints: usize,
    /// Independent optimality certificates for each LP solved on the way
    /// to this solution (empty when certification was disabled).
    pub(crate) certificates: Vec<smo_lp::Certificate>,
    /// Independent optimality certificate from the difference-constraint
    /// graph solver, when the fast path produced this solution (`None` on
    /// the simplex path).
    pub(crate) graph_certificate: Option<crate::fastpath::GraphCertificate>,
}

impl TimingSolution {
    /// The optimal cycle time `T_c`.
    pub fn cycle_time(&self) -> f64 {
        self.schedule.cycle()
    }

    /// The optimal clock schedule.
    pub fn schedule(&self) -> &ClockSchedule {
        &self.schedule
    }

    /// Departure time `D_i` of a synchronizer, relative to the start of its
    /// phase.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn departure(&self, id: LatchId) -> f64 {
        self.departures[id.index()]
    }

    /// All departure times, indexed by synchronizer index.
    pub fn departures(&self) -> &[f64] {
        &self.departures
    }

    /// Arrival time `A_i` of the latest valid input signal, relative to the
    /// start of the synchronizer's phase (`−∞` for elements without
    /// fan-in). Can be negative: the signal arrived before the phase opened.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn arrival(&self, id: LatchId) -> f64 {
        self.arrivals[id.index()]
    }

    /// All arrival times, indexed by synchronizer index.
    pub fn arrivals(&self) -> &[f64] {
        &self.arrivals
    }

    /// Sweeps taken by the departure-update iteration (the paper reports
    /// "two to three iterations" typically; zero means the LP point already
    /// satisfied the nonlinear constraints).
    pub fn update_iterations(&self) -> usize {
        self.update_iterations
    }

    /// Simplex iterations of the LP solve.
    pub fn lp_iterations(&self) -> usize {
        self.lp_iterations
    }

    /// Number of constraint rows in the generated LP.
    pub fn num_constraints(&self) -> usize {
        self.num_constraints
    }

    /// Independent optimality certificates, one per LP solved on the way
    /// to this solution (two with canonicalization, one without; empty
    /// when certification was disabled via
    /// [`MlpOptions::certify`](crate::MlpOptions)).
    pub fn certificates(&self) -> &[smo_lp::Certificate] {
        &self.certificates
    }

    /// The graph solver's optimality certificate, when the
    /// difference-constraint fast path produced this solution (`None` on
    /// the simplex path; see
    /// [`GraphCertificate`](crate::fastpath::GraphCertificate)).
    pub fn graph_certificate(&self) -> Option<&crate::fastpath::GraphCertificate> {
        self.graph_certificate.as_ref()
    }

    /// `true` when every solver verdict behind this solution was
    /// independently machine-checked: at least one certificate present
    /// (KKT certificates on the simplex path, a
    /// [`GraphCertificate`](crate::fastpath::GraphCertificate) on the
    /// graph fast path) and all of them valid.
    pub fn certified(&self) -> bool {
        let any = !self.certificates.is_empty() || self.graph_certificate.is_some();
        any && self.certificates.iter().all(|c| c.is_valid())
            && self.graph_certificate.iter().all(|c| c.is_valid())
    }

    /// Absolute departure instant within the cycle: `s_{p_i} + D_i`, for
    /// plotting (the paper's Fig. 6 strips are in absolute time).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or `phase` lookup fails.
    pub fn absolute_departure(&self, id: LatchId, phase: smo_circuit::PhaseId) -> f64 {
        self.schedule.start(phase) + self.departure(id)
    }
}

impl fmt::Display for TimingSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "optimal Tc = {:.4}", self.cycle_time())?;
        if self.certified() {
            write!(f, " [certified]")?;
        }
        writeln!(
            f,
            "  ({} constraints, {} lp iterations, {} update sweeps)",
            self.num_constraints, self.lp_iterations, self.update_iterations
        )?;
        write!(f, "{}", self.schedule)?;
        for (i, (&d, &a)) in self.departures.iter().zip(&self.arrivals).enumerate() {
            writeln!(f, "L{}: departs {:.4}, arrival {:.4}", i + 1, d, a)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> TimingSolution {
        TimingSolution {
            schedule: ClockSchedule::symmetric(2, 100.0, 0.0).unwrap(),
            departures: vec![40.0, 20.0],
            arrivals: vec![40.0, -3.0],
            update_iterations: 2,
            lp_iterations: 9,
            num_constraints: 15,
            certificates: Vec::new(),
            graph_certificate: None,
        }
    }

    #[test]
    fn accessors_index_by_latch() {
        let s = dummy();
        assert_eq!(s.cycle_time(), 100.0);
        assert_eq!(s.departure(LatchId::new(1)), 20.0);
        assert_eq!(s.arrival(LatchId::new(1)), -3.0);
        assert_eq!(
            s.absolute_departure(LatchId::new(1), smo_circuit::PhaseId::new(1)),
            70.0
        );
    }

    #[test]
    fn display_reports_counts() {
        let text = dummy().to_string();
        assert!(text.contains("Tc = 100"));
        assert!(text.contains("15 constraints"));
        assert!(text.contains("2 update sweeps"));
    }
}
