//! Infeasibility diagnosis: *why* is there no feasible clock schedule?
//!
//! A plain SMO model (problem **P2**) is always feasible — a large enough
//! `T_c` satisfies everything — so infeasibility only arises when extras
//! over-constrain it: a fixed or capped cycle time, minimum phase widths,
//! separations, pinned departures (§III-A extras). When that happens this
//! module turns the raw LP answer into an explanation in the paper's own
//! vocabulary:
//!
//! 1. the solver's Farkas certificate is re-verified against the model
//!    ([`smo_lp::certifies_infeasibility`]), giving a machine-checked proof
//!    that no schedule exists;
//! 2. an irreducible infeasible subsystem is extracted
//!    ([`smo_lp::extract_iis`]) — a minimal set of rows that conflict;
//! 3. each IIS row is mapped back through the [`TimingModel`]'s provenance
//!    records ([`ConstraintInfo`]) to the C1–C3 / L1 / L2R constraint of
//!    the paper it encodes, named after the latches and phases involved.
//!
//! The result is an [`InfeasibilityReport`] that renders both as prose
//! (`Display`) and as JSON ([`InfeasibilityReport::to_json`]).

use crate::error::TimingError;
use crate::model::{ConstraintInfo, ConstraintKind, TimingModel};
use smo_circuit::{Circuit, SyncKind};
use smo_lp::{certifies_infeasibility, extract_iis, ConstraintId, Problem, Sense, Status};
use std::fmt;

/// One member of an irreducible infeasible subsystem, mapped back to the
/// SMO constraint it encodes.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnosedConstraint {
    /// The LP row (index into the model's constraint registry).
    pub row: ConstraintId,
    /// Constraint category.
    pub kind: ConstraintKind,
    /// The paper's label for the constraint family, e.g. `"C3 (eq. 6)"`,
    /// `"L1 (eq. 16)"`, or `"extra"` for rows beyond the paper's minimum
    /// set (cycle bounds, minimum widths, …).
    pub label: String,
    /// Circuit-level description naming the latches/phases involved, e.g.
    /// `` "setup of latch `L2` on φ2" ``.
    pub detail: String,
    /// The LP row itself, rendered with variable names, e.g.
    /// `"D2 - T2 <= -10"`.
    pub relation: String,
}

impl fmt::Display for DiagnosedConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.label, self.detail, self.relation)
    }
}

/// The answer to "why is there no feasible schedule?": an irreducible
/// infeasible subsystem of the timing constraints, in paper vocabulary.
///
/// Produced by [`diagnose_infeasibility`]. The member list is minimal by
/// construction of the deletion filter: the members are jointly
/// infeasible, and removing any single one leaves a feasible remainder.
#[derive(Debug, Clone, PartialEq)]
pub struct InfeasibilityReport {
    /// The conflicting constraints (the IIS), in row order.
    pub constraints: Vec<DiagnosedConstraint>,
    /// `true` when the solver's Farkas certificate was independently
    /// re-verified against the model, making the infeasibility a
    /// machine-checked proof rather than a solver claim.
    pub certified: bool,
    /// Total rows in the model the conflict was extracted from.
    pub total_rows: usize,
    /// The cycle-time restriction in force when the model was built
    /// (`fixed_cycle` or `max_cycle`), if any.
    pub cycle_limit: Option<f64>,
}

impl InfeasibilityReport {
    /// The IIS member rows, for cross-checking against
    /// [`TimingModel::constraints`].
    pub fn rows(&self) -> Vec<ConstraintId> {
        self.constraints.iter().map(|c| c.row).collect()
    }

    /// `true` if the IIS involves a constraint of the given kind.
    pub fn involves(&self, kind: ConstraintKind) -> bool {
        self.constraints.iter().any(|c| c.kind == kind)
    }

    /// Renders the report as a JSON object (hand-rolled; no external
    /// serialization dependency).
    ///
    /// Shape:
    ///
    /// ```json
    /// {
    ///   "feasible": false,
    ///   "certified": true,
    ///   "cycle_limit": 100,
    ///   "total_rows": 24,
    ///   "iis": [
    ///     {"row": 7, "kind": "latch setup", "label": "L1 (eq. 16)",
    ///      "detail": "setup of latch `L2` on φ2", "relation": "D2 - T2 <= -10"}
    ///   ]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"feasible\": false,\n");
        out.push_str(&format!("  \"certified\": {},\n", self.certified));
        match self.cycle_limit {
            Some(t) => out.push_str(&format!("  \"cycle_limit\": {t},\n")),
            None => out.push_str("  \"cycle_limit\": null,\n"),
        }
        out.push_str(&format!("  \"total_rows\": {},\n", self.total_rows));
        out.push_str("  \"iis\": [\n");
        for (i, c) in self.constraints.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"row\": {}, \"kind\": \"{}\", \"label\": \"{}\", \"detail\": \"{}\", \"relation\": \"{}\"}}{}\n",
                c.row.index(),
                json_escape(&c.kind.to_string()),
                json_escape(&c.label),
                json_escape(&c.detail),
                json_escape(&c.relation),
                if i + 1 < self.constraints.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}");
        out
    }
}

impl fmt::Display for InfeasibilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.cycle_limit {
            Some(t) => writeln!(f, "no feasible clock schedule at cycle time {t}")?,
            None => writeln!(f, "no feasible clock schedule exists")?,
        }
        writeln!(
            f,
            "the conflict reduces to {} of {} constraint(s){}:",
            self.constraints.len(),
            self.total_rows,
            if self.certified {
                " (Farkas-certified)"
            } else {
                ""
            }
        )?;
        for (i, c) in self.constraints.iter().enumerate() {
            writeln!(f, "  {}. {c}", i + 1)?;
        }
        write!(
            f,
            "relaxing any single constraint above makes the rest feasible"
        )
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one LP row with its variable names: `"D2 - T2 <= -10"`.
fn render_row(p: &Problem, row: ConstraintId) -> String {
    let (expr, sense, rhs) = p.constraint(row);
    let mut s = String::new();
    for (v, c) in expr.iter() {
        if s.is_empty() {
            if c < 0.0 {
                s.push('-');
            }
        } else if c < 0.0 {
            s.push_str(" - ");
        } else {
            s.push_str(" + ");
        }
        let mag = c.abs();
        if (mag - 1.0).abs() > 1e-12 {
            s.push_str(&format!("{mag}·"));
        }
        s.push_str(p.var_name(v));
    }
    if s.is_empty() {
        s.push('0');
    }
    format!("{s} {sense} {rhs}")
}

/// Maps one provenance record to its paper-level description.
pub(crate) fn describe(
    circuit: &Circuit,
    model: &TimingModel,
    info: &ConstraintInfo,
) -> DiagnosedConstraint {
    let p = model.problem();
    let name = |id| format!("`{}`", circuit.sync(id).name);
    let (label, detail) = match info.kind {
        ConstraintKind::PeriodicityWidth => (
            "C1 (eq. 3)".to_string(),
            format!("phase width of {} fits in the cycle", info.phases[0]),
        ),
        ConstraintKind::PeriodicityStart => (
            "C1 (eq. 4)".to_string(),
            format!("phase start of {} fits in the cycle", info.phases[0]),
        ),
        ConstraintKind::PhaseOrder => (
            "C2 (eq. 5)".to_string(),
            format!("{} starts no later than {}", info.phases[0], info.phases[1]),
        ),
        ConstraintKind::PhaseNonoverlap => (
            "C3 (eq. 6)".to_string(),
            format!("{} closes before {} opens", info.phases[1], info.phases[0]),
        ),
        ConstraintKind::Setup => {
            let id = info.latch.expect("setup rows carry a latch");
            (
                "L1 (eq. 16)".to_string(),
                format!("setup of latch {} ({}) on {}", name(id), id, info.phases[0]),
            )
        }
        ConstraintKind::FlipFlopSetup => {
            let id = info.latch.expect("ff-setup rows carry a latch");
            let e = circuit.edge(info.edge.expect("ff-setup rows carry an edge"));
            (
                "L1/FF".to_string(),
                format!(
                    "setup at flip-flop {} for path {} → {} ({} → {})",
                    name(id),
                    name(e.from),
                    name(e.to),
                    info.phases[0],
                    info.phases[1],
                ),
            )
        }
        ConstraintKind::Propagation => {
            let e = circuit.edge(info.edge.expect("propagation rows carry an edge"));
            (
                "L2R (eq. 19)".to_string(),
                format!(
                    "propagation {} → {} (Δ = {}) across {} → {}",
                    name(e.from),
                    name(e.to),
                    e.max_delay,
                    info.phases[0],
                    info.phases[1],
                ),
            )
        }
        ConstraintKind::FlipFlopDeparture => {
            let id = info.latch.expect("ff-departure rows carry a latch");
            (
                "FF departure".to_string(),
                format!(
                    "departure of flip-flop {} pinned to the {} edge",
                    name(id),
                    info.phases[0]
                ),
            )
        }
        ConstraintKind::MinWidth => {
            let (_, _, rhs) = p.constraint(info.row);
            (
                "extra".to_string(),
                format!("minimum width of {} (≥ {rhs})", info.phases[0]),
            )
        }
        ConstraintKind::CycleBound => {
            let (_, sense, rhs) = p.constraint(info.row);
            let what = match sense {
                Sense::Eq => format!("cycle time fixed at {rhs}"),
                _ => format!("cycle time capped at {rhs}"),
            };
            ("extra".to_string(), what)
        }
        ConstraintKind::SymmetricClock => (
            "extra".to_string(),
            format!("symmetric-clock shape of {}", info.phases[0]),
        ),
        ConstraintKind::PinnedDeparture => {
            let id = info.latch.expect("pinned rows carry a latch");
            let s = circuit.sync(id);
            let kind = if s.kind == SyncKind::Latch {
                "latch"
            } else {
                "flip-flop"
            };
            (
                "extra".to_string(),
                format!("departure of {kind} {} pinned (no borrowing)", name(id)),
            )
        }
    };
    DiagnosedConstraint {
        row: info.row,
        kind: info.kind,
        label,
        detail,
        relation: render_row(p, info.row),
    }
}

/// Diagnoses why `model` admits no feasible clock schedule.
///
/// Returns `Ok(None)` when the model is feasible (an optimal schedule
/// exists). Otherwise extracts an irreducible infeasible subsystem from
/// the LP, re-verifies the solver's Farkas certificate, and maps every
/// IIS row back through the model's provenance records to the paper's
/// constraint names.
///
/// `circuit` must be the circuit `model` was built from (it supplies the
/// latch names for the descriptions).
///
/// # Errors
///
/// Propagates LP solver failures ([`TimingError::Lp`]) and maps an
/// unbounded LP to [`TimingError::Unbounded`] (a modelling error: the
/// cycle-time objective is bounded below in every well-formed model).
pub fn diagnose_infeasibility(
    circuit: &Circuit,
    model: &TimingModel,
) -> Result<Option<InfeasibilityReport>, TimingError> {
    let p = model.problem();
    let sol = p.solve().map_err(TimingError::Lp)?;
    match sol.status() {
        Status::Optimal => return Ok(None),
        Status::Unbounded => return Err(TimingError::Unbounded),
        Status::Infeasible => {}
    }
    let certified = sol.farkas().is_some_and(|y| certifies_infeasibility(p, y));
    let Some(iis) = extract_iis(p).map_err(TimingError::Lp)? else {
        // The deletion filter re-solves reduced models; on a marginally
        // infeasible system round-off can flip one of them feasible and
        // leave no IIS even though the full solve said Infeasible.
        return Err(TimingError::Lp(smo_lp::LpError::Numerical {
            context: "infeasible model yielded no irreducible subsystem".into(),
        }));
    };
    let constraints = iis
        .rows()
        .iter()
        .map(|&row| {
            let info = &model.constraints()[row.index()];
            debug_assert_eq!(info.row, row, "provenance registry is in row order");
            describe(circuit, model, info)
        })
        .collect();
    Ok(Some(InfeasibilityReport {
        constraints,
        certified,
        total_rows: p.num_constraints(),
        cycle_limit: model.options().fixed_cycle.or(model.options().max_cycle),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ConstraintOptions;
    use smo_circuit::{CircuitBuilder, PhaseId};

    /// Two latches on a 2-phase clock with a long path between them.
    fn two_latch_loop() -> Circuit {
        let mut b = CircuitBuilder::new(2);
        let l1 = b.add_latch("L1", PhaseId::from_number(1), 2.0, 3.0);
        let l2 = b.add_latch("L2", PhaseId::from_number(2), 2.0, 3.0);
        b.connect(l1, l2, 20.0);
        b.connect(l2, l1, 20.0);
        b.build().unwrap()
    }

    #[test]
    fn feasible_models_yield_no_report() {
        let ckt = two_latch_loop();
        let model = TimingModel::build(&ckt).unwrap();
        assert!(diagnose_infeasibility(&ckt, &model).unwrap().is_none());
    }

    #[test]
    fn capped_cycle_is_diagnosed_with_paper_names() {
        let ckt = two_latch_loop();
        // The free optimum is > 40 (two 20-unit paths per cycle plus
        // overheads); cap far below it.
        let free = TimingModel::build(&ckt)
            .unwrap()
            .solve_lp()
            .unwrap()
            .objective();
        let opts = ConstraintOptions {
            max_cycle: Some(0.5 * free),
            ..Default::default()
        };
        let model = TimingModel::build_with(&ckt, &opts).unwrap();
        let report = diagnose_infeasibility(&ckt, &model)
            .unwrap()
            .expect("capped model is infeasible");
        assert!(report.certified, "Farkas certificate must verify");
        assert_eq!(report.cycle_limit, Some(0.5 * free));
        // The cap itself must be part of the conflict…
        assert!(report.involves(ConstraintKind::CycleBound));
        // …together with at least one latch-level constraint.
        assert!(
            report.involves(ConstraintKind::Setup) || report.involves(ConstraintKind::Propagation)
        );
        let text = report.to_string();
        assert!(text.contains("no feasible clock schedule at cycle time"));
        assert!(text.contains("cycle time capped at"));
        assert!(text.contains("`L1`") || text.contains("`L2`"));
        assert!(text.contains('φ'));
        // IIS minimality: drop any member, remainder is feasible.
        let p = model.problem();
        let rows = report.rows();
        assert_eq!(
            p.restricted(&rows).solve().unwrap().status(),
            Status::Infeasible
        );
        for i in 0..rows.len() {
            let mut rest = rows.clone();
            rest.remove(i);
            assert_ne!(
                p.restricted(&rest).solve().unwrap().status(),
                Status::Infeasible,
                "IIS member {i} is redundant"
            );
        }
    }

    #[test]
    fn json_report_is_well_formed() {
        let ckt = two_latch_loop();
        let opts = ConstraintOptions {
            fixed_cycle: Some(1.0),
            ..Default::default()
        };
        let model = TimingModel::build_with(&ckt, &opts).unwrap();
        let report = diagnose_infeasibility(&ckt, &model).unwrap().unwrap();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"feasible\": false"));
        assert!(json.contains("\"cycle_limit\": 1,"));
        assert!(json.contains("\"iis\": ["));
        // Balanced braces/brackets (cheap well-formedness check).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("φ1 → φ2"), "φ1 → φ2");
    }
}
