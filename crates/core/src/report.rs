//! A combined, human-readable timing report: schedule, per-latch timing,
//! slacks, critical segments and diagrams in one text block — the
//! "paper-style" printout produced by the 1990 implementation's output
//! routines.

use crate::analysis::{verify_with, AnalysisOptions};
use crate::critical::critical_report;
use crate::diagram::render_solution;
use crate::error::TimingError;
use crate::mlp::{min_cycle_time_with, MlpOptions};
use crate::model::TimingModel;
use crate::solution::TimingSolution;
use smo_circuit::Circuit;
use std::fmt::Write as _;

/// Builds the full optimal-clocking report for a circuit: runs Algorithm
/// MLP, verifies the result, computes critical segments, and renders
/// everything as text.
///
/// # Errors
///
/// Propagates [`TimingError`] from the solve.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), smo_core::TimingError> {
/// # let circuit = {
/// #     let mut b = smo_circuit::CircuitBuilder::new(2);
/// #     let p = smo_circuit::PhaseId::from_number;
/// #     let a = b.add_latch("A", p(1), 1.0, 1.0);
/// #     let c = b.add_latch("B", p(2), 1.0, 1.0);
/// #     b.connect(a, c, 5.0);
/// #     b.connect(c, a, 5.0);
/// #     b.build().unwrap()
/// # };
/// let text = smo_core::timing_report(&circuit, &Default::default())?;
/// assert!(text.contains("optimal cycle time"));
/// # Ok(())
/// # }
/// ```
pub fn timing_report(circuit: &Circuit, options: &MlpOptions) -> Result<String, TimingError> {
    let solution = min_cycle_time_with(circuit, options)?;
    render_report(circuit, options, &solution)
}

/// Renders the report for an already computed solution.
///
/// # Errors
///
/// Propagates LP failures from the critical-segment analysis.
pub fn render_report(
    circuit: &Circuit,
    options: &MlpOptions,
    solution: &TimingSolution,
) -> Result<String, TimingError> {
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "optimal cycle time: {:.4}", solution.cycle_time());
    let _ = writeln!(
        w,
        "({} constraints, {} simplex iterations, {} update sweeps)",
        solution.num_constraints(),
        solution.lp_iterations(),
        solution.update_iterations()
    );
    let _ = writeln!(w);
    let _ = write!(w, "{}", render_solution(circuit, solution));

    // per-latch slack table
    let analysis = verify_with(
        circuit,
        solution.schedule(),
        &AnalysisOptions {
            nonoverlap_scope: options.constraints.nonoverlap_scope,
            setup_margin: options.constraints.setup_margin,
            ..Default::default()
        },
    );
    let _ = writeln!(w, "\nper-synchronizer timing (relative to own phase):");
    let _ = writeln!(
        w,
        "  {:16} {:>4} {:>10} {:>10} {:>10}",
        "name", "φ", "arrival", "departure", "slack"
    );
    for (id, sync) in circuit.syncs() {
        let arr = analysis.arrivals()[id.index()];
        let _ = writeln!(
            w,
            "  {:16} {:>4} {:>10} {:>10.4} {:>10.4}{}",
            sync.name,
            sync.phase.number(),
            if arr.is_finite() {
                format!("{arr:.4}")
            } else {
                "-∞".to_string()
            },
            analysis.departures()[id.index()],
            analysis.setup_slack(id),
            if analysis.setup_slack(id).abs() < 1e-7 {
                "  ← critical"
            } else {
                ""
            }
        );
    }

    // critical segments
    let model = TimingModel::build_with(circuit, &options.constraints)?;
    let critical = critical_report(circuit, &model)?;
    let _ = writeln!(w, "\ncritical combinational segments:");
    if critical.segments.is_empty() {
        let _ = writeln!(
            w,
            "  (none — the cycle time is set by setup/width/clock rows)"
        );
    }
    for (i, seg) in critical.segments.iter().enumerate() {
        let _ = write!(w, "  segment {i}: ");
        for (j, &eid) in seg.edges.iter().enumerate() {
            let e = circuit.edge(eid);
            if j == 0 {
                let _ = write!(w, "{}", circuit.sync(e.from).name);
            }
            let _ = write!(w, " →[{}] {}", e.max_delay, circuit.sync(e.to).name);
        }
        let _ = writeln!(w);
    }
    for ce in &critical.edges {
        let e = circuit.edge(ce.edge);
        let _ = writeln!(
            w,
            "    dTc/dΔ({} → {}) = {:.4}",
            circuit.sync(e.from).name,
            circuit.sync(e.to).name,
            ce.sensitivity
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smo_circuit::{CircuitBuilder, PhaseId};

    use smo_gen::paper::example1;

    #[test]
    fn report_contains_all_sections() {
        let text = timing_report(&example1(80.0), &MlpOptions::default()).unwrap();
        assert!(text.contains("optimal cycle time: 110"));
        assert!(text.contains("per-synchronizer timing"));
        assert!(text.contains("critical combinational segments"));
        assert!(text.contains("L4"));
        assert!(text.contains("dTc/dΔ"));
    }

    #[test]
    fn critical_marker_appears_for_zero_slack() {
        let text = timing_report(&example1(80.0), &MlpOptions::default()).unwrap();
        assert!(text.contains("← critical"));
    }

    #[test]
    fn report_without_critical_edges_says_so() {
        // single latch, no edges: cycle time set by setup width only
        let mut b = CircuitBuilder::new(1);
        b.add_latch("solo", PhaseId::from_number(1), 3.0, 4.0);
        let c = b.build().unwrap();
        let text = timing_report(&c, &MlpOptions::default()).unwrap();
        assert!(text.contains("(none"));
    }
}
