//! Error type for the timing engine.

use smo_circuit::CircuitError;
use smo_lp::LpError;
use std::error::Error;
use std::fmt;

/// Errors reported by the timing engine.
#[derive(Debug, Clone, PartialEq)]
pub enum TimingError {
    /// The circuit or schedule is structurally invalid.
    Circuit(CircuitError),
    /// The underlying LP solver failed (API misuse or numerical breakdown).
    Lp(LpError),
    /// The timing constraints admit no solution.
    ///
    /// For a plain SMO model this cannot happen (a large enough `T_c` always
    /// exists); it arises when user extras — a fixed cycle time, minimum
    /// phase widths/separations, an upper bound on `T_c` — over-constrain
    /// the model.
    Infeasible {
        /// Human-readable explanation.
        reason: String,
    },
    /// The LP was unbounded. Indicates a modelling error (the objective
    /// `T_c ≥ 0` is always bounded below in a well-formed model).
    Unbounded,
    /// An option value passed to the engine is invalid (NaN, negative, …).
    InvalidOptions {
        /// Human-readable explanation.
        reason: String,
    },
    /// The departure-time fixpoint iteration failed to converge within its
    /// safeguard bound (should not occur; please report).
    NotConverged {
        /// Iterations performed before giving up.
        iterations: usize,
        /// The trailing per-sweep residual trajectory (largest departure
        /// movement per sweep): growing residuals indicate a positive-gain
        /// loop, residuals hovering near the fixpoint tolerance indicate a
        /// numerical problem in the schedule.
        residuals: Vec<f64>,
    },
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::Circuit(e) => write!(f, "circuit error: {e}"),
            TimingError::Lp(e) => write!(f, "lp solver error: {e}"),
            TimingError::Infeasible { reason } => {
                write!(f, "timing constraints are infeasible: {reason}")
            }
            TimingError::Unbounded => write!(f, "cycle-time lp is unbounded"),
            TimingError::InvalidOptions { reason } => {
                write!(f, "invalid options: {reason}")
            }
            TimingError::NotConverged {
                iterations,
                residuals,
            } => {
                write!(
                    f,
                    "departure fixpoint did not converge after {iterations} iterations"
                )?;
                if !residuals.is_empty() {
                    let traj = residuals
                        .iter()
                        .map(|r| format!("{r:.3e}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    write!(f, " (trailing residuals: {traj})")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for TimingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TimingError::Circuit(e) => Some(e),
            TimingError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for TimingError {
    fn from(e: CircuitError) -> Self {
        TimingError::Circuit(e)
    }
}

impl From<LpError> for TimingError {
    fn from(e: LpError) -> Self {
        TimingError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e = TimingError::from(LpError::EmptyModel);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("lp solver"));
        let e = TimingError::from(CircuitError::EmptyCircuit);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TimingError>();
    }
}
