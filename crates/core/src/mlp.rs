//! Algorithm MLP: optimal cycle-time calculation by modified linear
//! programming (§IV).
//!
//! 1. Solve the relaxed LP **P2** (constraints C1–C4, L1, L2R, L3),
//!    obtaining the optimal clock schedule and an initial departure vector
//!    `D⁰`.
//! 2. Holding the clock variables fixed, iterate the nonlinear propagation
//!    equations L2 until the departures stop changing — "sliding" each `D_i`
//!    toward the time origin. Starting from a point satisfying L2R the
//!    iteration is monotone non-increasing and terminates.
//!
//! By Theorem 1 the resulting point is optimal for the original nonlinear
//! problem **P1**: the cycle time is untouched by step 2, and the slid
//! departures still satisfy every setup constraint (they only decreased).

use crate::error::TimingError;
use crate::fastpath::{self, Backend, FastPathOutcome};
use crate::model::{ConstraintOptions, TimingModel};
use crate::propagation::PropagationSystem;
use crate::solution::TimingSolution;
use smo_circuit::{Circuit, ClockSchedule};

/// Which fixpoint iteration Algorithm MLP uses in its update step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateMode {
    /// The paper's synchronous (Jacobi) update.
    Jacobi,
    /// In-place sweeps; usually fewer sweeps than Jacobi.
    #[default]
    GaussSeidel,
    /// Worklist update recomputing only affected departures (the paper's
    /// suggested enhancement for large circuits).
    EventDriven,
}

/// Options for [`min_cycle_time_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpOptions {
    /// Constraint-generation options (extras like minimum phase width).
    pub constraints: ConstraintOptions,
    /// Fixpoint iteration style for the update step.
    pub update: UpdateMode,
    /// The optimal solution of P2 is generally not unique (§V, first
    /// observation on Example 1). When `true` (the default), a second LP
    /// pass fixes `T_c` at its optimum and minimizes `Σ(s_i + T_i)`,
    /// selecting a canonical "compact" schedule deterministically: phases
    /// start as early and are as narrow as the constraints allow.
    pub canonicalize: bool,
    /// Which simplex implementation solves the LPs (dense tableau or
    /// sparse revised; identical results, different scaling).
    pub simplex: smo_lp::SimplexVariant,
    /// When `true` (the default), every LP verdict is independently
    /// machine-checked via [`smo_lp::Problem::solve_certified`]: an
    /// `Optimal` answer carries a KKT [`Certificate`](smo_lp::Certificate)
    /// (see [`TimingSolution::certificates`](crate::TimingSolution)), a
    /// failed check walks the numerical recovery ladder, and exhaustion
    /// surfaces as a structured error instead of a silently-wrong cycle
    /// time.
    pub certify: bool,
    /// Wall-clock budget for the whole solve (`None` = unlimited). The
    /// deadline is absolute: it is fixed once at entry and shared by the
    /// graph fast path (checked per Bellman–Ford pass), the certified
    /// recovery ladder and the plain simplex loops, so even a pathological
    /// model returns [`smo_lp::LpError::Budget`] promptly on *every*
    /// backend and certification mode.
    pub time_limit: Option<std::time::Duration>,
    /// Which solver backs the cycle-time computation (see [`Backend`]).
    /// Defaults to [`Backend::Lp`] so library callers see the exact
    /// behavior of earlier releases; the `smo` CLI passes
    /// [`Backend::Auto`].
    pub backend: Backend,
    /// Simplex pricing strategy, honored by the sparse-LU variant on
    /// every LP this solve runs (certified rungs included); the dense and
    /// revised variants ignore it. All strategies give identical verdicts
    /// and objectives — this only trades pivot-selection cost against
    /// pivot count.
    pub pricing: smo_lp::Pricing,
}

impl Default for MlpOptions {
    fn default() -> Self {
        MlpOptions {
            constraints: ConstraintOptions::default(),
            update: UpdateMode::default(),
            canonicalize: true,
            simplex: smo_lp::SimplexVariant::default(),
            certify: true,
            time_limit: None,
            backend: Backend::Lp,
            pricing: smo_lp::Pricing::default(),
        }
    }
}

impl MlpOptions {
    /// The budget shared by every solver stage of one solve: built once at
    /// entry so the deadline is absolute across the graph fast path, the
    /// cycle-time LP and the canonicalizing re-solve.
    fn budget(&self) -> smo_lp::SolveBudget {
        match self.time_limit {
            Some(limit) => smo_lp::SolveBudget::with_time_limit(limit),
            None => smo_lp::SolveBudget::UNLIMITED,
        }
    }

    /// The [`smo_lp::RecoveryPolicy`] these options induce under `budget`,
    /// or `None` when certification is off.
    fn policy(&self, budget: smo_lp::SolveBudget) -> Option<smo_lp::RecoveryPolicy> {
        self.certify.then_some(smo_lp::RecoveryPolicy {
            variant: self.simplex,
            budget,
            pricing: self.pricing,
        })
    }
}

/// Computes the minimum cycle time and an optimal clock schedule for
/// `circuit` (problem **P1**), using Algorithm MLP with default options.
///
/// # Errors
///
/// Returns [`TimingError::Infeasible`] only when extra options
/// over-constrain the model (the plain SMO constraints always admit a
/// schedule), and [`TimingError::Lp`]/[`TimingError::NotConverged`] on
/// solver failures.
///
/// # Examples
///
/// ```
/// use smo_circuit::{CircuitBuilder, PhaseId};
/// use smo_core::min_cycle_time;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::new(2);
/// let a = b.add_latch("A", PhaseId::from_number(1), 10.0, 10.0);
/// let c = b.add_latch("B", PhaseId::from_number(2), 10.0, 10.0);
/// b.connect(a, c, 20.0);
/// b.connect(c, a, 60.0);
/// let circuit = b.build()?;
/// let solution = min_cycle_time(&circuit)?;
/// // The A→B→A loop crosses the cycle boundary once (φ1→φ2 stays within
/// // a cycle, φ2→φ1 crosses), so the whole loop delay must fit in one
/// // period: Tc = 20 + 60 + two latch delays = 100.
/// assert!((solution.cycle_time() - 100.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn min_cycle_time(circuit: &Circuit) -> Result<TimingSolution, TimingError> {
    min_cycle_time_with(circuit, &MlpOptions::default())
}

/// [`min_cycle_time`] with explicit [`MlpOptions`].
///
/// # Errors
///
/// See [`min_cycle_time`].
pub fn min_cycle_time_with(
    circuit: &Circuit,
    options: &MlpOptions,
) -> Result<TimingSolution, TimingError> {
    run_mlp(circuit, options, None, None)
}

/// [`min_cycle_time_with`] for resident callers (the `smo serve` daemon,
/// sweep-style batches): optionally seeds the first LP from a cached basis
/// snapshot and hands back the snapshot of this solve's cycle-time LP for
/// the caller's cache.
///
/// The returned basis fits any model sharing this one's
/// [`matrix_fingerprint`](smo_lp::Problem::matrix_fingerprint) — delay
/// edits change only right-hand sides, so perturbed copies of the same
/// topology warm-start from it. `None` when no LP ran (pure models solved
/// outright by the graph fast path) or the solver produced no snapshot. A
/// stale or ill-fitting `warm` falls back to a cold solve silently;
/// verdicts never depend on the warm start.
///
/// # Errors
///
/// See [`min_cycle_time`].
pub fn min_cycle_time_warm(
    circuit: &Circuit,
    options: &MlpOptions,
    warm: Option<&smo_lp::Basis>,
) -> Result<(TimingSolution, Option<smo_lp::Basis>), TimingError> {
    let mut captured = None;
    let solution = run_mlp(circuit, options, warm, Some(&mut captured))?;
    Ok((solution, captured))
}

/// Shared driver behind [`min_cycle_time_with`] / [`min_cycle_time_warm`]:
/// one budget for every stage, optional warm seed, optional basis capture.
fn run_mlp(
    circuit: &Circuit,
    options: &MlpOptions,
    warm_in: Option<&smo_lp::Basis>,
    captured: Option<&mut Option<smo_lp::Basis>>,
) -> Result<TimingSolution, TimingError> {
    let model = TimingModel::build_with(circuit, &options.constraints)?;
    let budget = options.budget();
    let policy = options.policy(budget);
    // Difference-constraint fast path: exact graph solve on pure models,
    // crossover warm start on mixed ones (see [`crate::fastpath`]). A
    // caller-cached optimal basis beats the crossover guess when both are
    // on offer.
    let mut warm: Option<smo_lp::Basis> = warm_in.cloned();
    if options.backend != Backend::Lp {
        match fastpath::attempt(circuit, &model, options.update, &budget) {
            Ok(FastPathOutcome::Solved(solution)) => return Ok(*solution),
            Ok(FastPathOutcome::WarmStart(basis)) => {
                if options.backend == Backend::Graph {
                    return Err(TimingError::InvalidOptions {
                        reason: "backend `graph` requires a pure difference-constraint \
                                 model, but the generated rows include general linear \
                                 constraints (use `auto` or `lp`)"
                            .into(),
                    });
                }
                if warm.is_none() {
                    warm = basis;
                }
            }
            Err(e @ TimingError::Infeasible { .. }) => return Err(e),
            Err(e @ TimingError::Lp(smo_lp::LpError::Budget { .. })) => {
                // The deadline expired inside the fast path; falling
                // through to the simplex would defeat it.
                return Err(e);
            }
            Err(e) => {
                if options.backend == Backend::Graph {
                    return Err(e);
                }
                // `auto` treats numerical trouble in the fast path as a
                // miss, not a verdict: fall through to the certified LP.
            }
        }
    }
    if options.canonicalize {
        canonical_inner(
            circuit,
            &model,
            options.update,
            options.simplex,
            policy.as_ref(),
            warm.as_ref(),
            budget,
            options.pricing,
            captured,
        )
    } else {
        model_inner(
            circuit,
            &model,
            options.update,
            options.simplex,
            policy.as_ref(),
            warm.as_ref(),
            budget,
            options.pricing,
            captured,
        )
    }
}

/// Like [`solve_model`], but after finding the optimal `T_c` it re-solves
/// with `T_c` bounded at that optimum and the objective
/// `minimize Σ(s_i + T_i)`, returning a canonical compact schedule among
/// the (generally non-unique) optima.
///
/// # Errors
///
/// See [`min_cycle_time`].
pub fn solve_model_canonical(
    circuit: &Circuit,
    model: &TimingModel,
    update: UpdateMode,
) -> Result<TimingSolution, TimingError> {
    solve_model_canonical_with(circuit, model, update, smo_lp::SimplexVariant::Dense)
}

/// [`solve_model_canonical`] with an explicit simplex implementation.
///
/// # Errors
///
/// See [`min_cycle_time`].
pub fn solve_model_canonical_with(
    circuit: &Circuit,
    model: &TimingModel,
    update: UpdateMode,
    variant: smo_lp::SimplexVariant,
) -> Result<TimingSolution, TimingError> {
    canonical_inner(
        circuit,
        model,
        update,
        variant,
        None,
        None,
        smo_lp::SolveBudget::UNLIMITED,
        smo_lp::Pricing::default(),
        None,
    )
}

/// Canonicalizing pipeline shared by the certified and plain paths. A warm
/// basis (from the fast path's crossover) only seeds the *first* solve —
/// the refined model has an extra row, so the snapshot no longer fits it.
/// For the same reason `captured` snapshots the *first* (cycle-time) solve:
/// that is the basis a later solve of this model can be seeded with.
#[allow(clippy::too_many_arguments)]
fn canonical_inner(
    circuit: &Circuit,
    model: &TimingModel,
    update: UpdateMode,
    variant: smo_lp::SimplexVariant,
    policy: Option<&smo_lp::RecoveryPolicy>,
    warm: Option<&smo_lp::Basis>,
    budget: smo_lp::SolveBudget,
    pricing: smo_lp::Pricing,
    captured: Option<&mut Option<smo_lp::Basis>>,
) -> Result<TimingSolution, TimingError> {
    let (first, mut certificates) = match policy {
        Some(pol) => {
            let (sol, cert) = model.solve_lp_certified_from_basis(pol, warm)?;
            (sol, vec![cert])
        }
        None => (
            model.solve_lp_budgeted(variant, warm, budget, pricing)?,
            Vec::new(),
        ),
    };
    if let Some(slot) = captured {
        *slot = first.basis().cloned();
    }
    let tc_opt = first.objective();

    let mut refined = model.clone();
    {
        let vars = refined.vars().clone();
        let p = refined.problem_mut();
        p.constrain(smo_lp::LinExpr::from(vars.tc()), smo_lp::Sense::Eq, tc_opt);
        let mut secondary = smo_lp::LinExpr::new();
        for i in 0..vars.num_phases() {
            let ph = smo_circuit::PhaseId::new(i);
            secondary = secondary + vars.start(ph) + vars.width(ph);
        }
        p.minimize(secondary);
    }
    match model_inner(
        circuit, &refined, update, variant, policy, None, budget, pricing, None,
    ) {
        Ok(mut solution) => {
            solution.num_constraints = model.num_constraints();
            solution.lp_iterations += first.iterations();
            // Both certificates travel with the solution: the cycle-time
            // solve first, the canonicalizing re-solve second.
            certificates.append(&mut solution.certificates);
            solution.certificates = certificates;
            Ok(solution)
        }
        // Fixing Tc at the float optimum can, in principle, be defeated by
        // round-off; fall back to the (correct, just non-canonical) first
        // solution rather than fail. On the certified path a marginally
        // infeasible pin surfaces as `CertificationFailed` instead (the
        // Farkas check rightly refuses to confirm a round-off
        // infeasibility), so that exhaustion gets the same fallback.
        Err(TimingError::Infeasible { .. })
        | Err(TimingError::Lp(smo_lp::LpError::CertificationFailed { .. })) => model_inner(
            circuit, model, update, variant, policy, warm, budget, pricing, None,
        ),
        Err(e) => Err(e),
    }
}

/// Runs steps 1 (LP) and 2 (departure slide) of Algorithm MLP on an already
/// built model. Exposed so callers that tweak the model (extra rows, RHS
/// sweeps) can reuse the pipeline.
///
/// # Errors
///
/// See [`min_cycle_time`].
pub fn solve_model(
    circuit: &Circuit,
    model: &TimingModel,
    update: UpdateMode,
) -> Result<TimingSolution, TimingError> {
    solve_model_with(circuit, model, update, smo_lp::SimplexVariant::Dense)
}

/// [`solve_model`] with an explicit simplex implementation.
///
/// # Errors
///
/// See [`min_cycle_time`].
pub fn solve_model_with(
    circuit: &Circuit,
    model: &TimingModel,
    update: UpdateMode,
    variant: smo_lp::SimplexVariant,
) -> Result<TimingSolution, TimingError> {
    model_inner(
        circuit,
        model,
        update,
        variant,
        None,
        None,
        smo_lp::SolveBudget::UNLIMITED,
        smo_lp::Pricing::default(),
        None,
    )
}

/// Step 2 of Algorithm MLP: slide the departures from `d0` to the
/// nonlinear fixpoint under a fixed schedule. The slide is geometric when
/// a loop's gain is a tiny negative number, so the cap is generous;
/// hitting it is reported as `NotConverged` rather than silently accepted.
/// Returns `(departures, arrivals, iterations)`. Shared with the graph
/// fast path, whose schedule also satisfies L2R at its start point.
pub(crate) fn slide_departures(
    circuit: &Circuit,
    schedule: &ClockSchedule,
    d0: &[f64],
    update: UpdateMode,
) -> Result<(Vec<f64>, Vec<f64>, usize), TimingError> {
    let system = PropagationSystem::new(circuit, schedule);
    let cap = 1000 + 100 * circuit.num_syncs();
    let result = match update {
        UpdateMode::Jacobi => system.jacobi(d0, cap),
        UpdateMode::GaussSeidel => system.gauss_seidel(d0, cap),
        UpdateMode::EventDriven => {
            system.event_driven(d0, 1000 + 100 * circuit.num_syncs() * circuit.num_syncs())
        }
    };
    if !result.converged {
        return Err(TimingError::NotConverged {
            iterations: result.iterations,
            residuals: result.residuals,
        });
    }
    let arrivals = system.arrivals(&result.departures);
    Ok((result.departures, arrivals, result.iterations))
}

/// Steps 1–2 of Algorithm MLP, optionally on the certified LP path,
/// optionally warm-started from a crossover basis, with the LP's basis
/// snapshot handed back through `captured` for resident callers' caches.
#[allow(clippy::too_many_arguments)]
fn model_inner(
    circuit: &Circuit,
    model: &TimingModel,
    update: UpdateMode,
    variant: smo_lp::SimplexVariant,
    policy: Option<&smo_lp::RecoveryPolicy>,
    warm: Option<&smo_lp::Basis>,
    budget: smo_lp::SolveBudget,
    pricing: smo_lp::Pricing,
    captured: Option<&mut Option<smo_lp::Basis>>,
) -> Result<TimingSolution, TimingError> {
    // Step 1: LP.
    let (lp, certificates) = match policy {
        Some(pol) => {
            let (sol, cert) = model.solve_lp_certified_from_basis(pol, warm)?;
            (sol, vec![cert])
        }
        None => (
            model.solve_lp_budgeted(variant, warm, budget, pricing)?,
            Vec::new(),
        ),
    };
    if let Some(slot) = captured {
        *slot = lp.basis().cloned();
    }
    let schedule = model.extract_schedule(&lp)?;
    let d0 = model.extract_departures(&lp);

    // Step 2: slide the departures to the nonlinear fixpoint.
    let (departures, arrivals, update_iterations) =
        slide_departures(circuit, &schedule, &d0, update)?;
    Ok(TimingSolution {
        schedule,
        departures,
        arrivals,
        update_iterations,
        lp_iterations: lp.iterations(),
        num_constraints: model.num_constraints(),
        certificates,
        graph_certificate: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smo_circuit::{CircuitBuilder, LatchId, PhaseId, SyncKind, Synchronizer};

    fn p(n: usize) -> PhaseId {
        PhaseId::from_number(n)
    }

    use smo_gen::paper::example1;

    /// The paper's closed form for Example 1 (§V): the optimal cycle time is
    /// the max of the average loop delay and the difference of the two
    /// single-cycle delays.
    fn example1_expected(d41: f64) -> f64 {
        let avg = (140.0 + d41) / 2.0;
        let diff = (80.0 + d41) - 60.0;
        let floor = 80.0; // set by L3→L4 single-stage requirement (Fig. 7 flat part)
        avg.max(diff).max(floor)
    }

    #[test]
    fn matches_paper_figure7_closed_form() {
        for d41 in [
            0.0, 10.0, 20.0, 40.0, 60.0, 80.0, 99.0, 100.0, 101.0, 120.0, 140.0,
        ] {
            let sol = min_cycle_time(&example1(d41)).unwrap();
            let expect = example1_expected(d41);
            assert!(
                (sol.cycle_time() - expect).abs() < 1e-6,
                "Δ41 = {d41}: got {}, expected {expect}",
                sol.cycle_time()
            );
        }
    }

    #[test]
    fn departures_satisfy_nonlinear_fixpoint() {
        for d41 in [80.0, 100.0, 120.0] {
            let c = example1(d41);
            let sol = min_cycle_time(&c).unwrap();
            let sys = PropagationSystem::new(&c, sol.schedule());
            for i in 0..c.num_syncs() {
                let expect = sys.update(sol.departures(), i);
                assert!(
                    (sol.departures()[i] - expect).abs() < 1e-7,
                    "Δ41 = {d41}, latch {i}: D = {} but F(D) = {expect}",
                    sol.departures()[i]
                );
            }
        }
    }

    #[test]
    fn setup_constraints_hold_at_optimum() {
        for d41 in [0.0, 60.0, 80.0, 120.0] {
            let c = example1(d41);
            let sol = min_cycle_time(&c).unwrap();
            for (id, s) in c.syncs() {
                let t = sol.schedule().width(s.phase);
                assert!(
                    sol.departure(id) + s.setup <= t + 1e-7,
                    "Δ41 = {d41}: latch {id} violates setup"
                );
            }
        }
    }

    #[test]
    fn update_modes_agree() {
        for mode in [
            UpdateMode::Jacobi,
            UpdateMode::GaussSeidel,
            UpdateMode::EventDriven,
        ] {
            let opts = MlpOptions {
                update: mode,
                ..Default::default()
            };
            let sol = min_cycle_time_with(&example1(120.0), &opts).unwrap();
            assert!((sol.cycle_time() - 140.0).abs() < 1e-6);
            let sys = PropagationSystem::new(&example1(120.0), sol.schedule());
            for i in 0..4 {
                let expect = sys.update(sol.departures(), i);
                assert!((sol.departures()[i] - expect).abs() < 1e-7, "{mode:?}");
            }
        }
    }

    #[test]
    fn update_terminates_in_few_sweeps() {
        // The paper: "the update process usually terminated in two to three
        // iterations (in some cases no iterations were even necessary)".
        // One sweep is always needed to *detect* the fixpoint, so allow a
        // small handful.
        let opts = MlpOptions {
            update: UpdateMode::Jacobi,
            ..Default::default()
        };
        for d41 in [60.0, 80.0, 100.0, 120.0] {
            let sol = min_cycle_time_with(&example1(d41), &opts).unwrap();
            assert!(
                sol.update_iterations() <= 6,
                "Δ41 = {d41}: {} sweeps",
                sol.update_iterations()
            );
        }
    }

    #[test]
    fn flip_flop_loop_solves_like_classic_sta() {
        // Two FFs on the same phase in a loop: Tc = max stage (dq + Δ + setup).
        let mut b = CircuitBuilder::new(1);
        let f1 = b.add_flip_flop("F1", p(1), 1.0, 2.0);
        let f2 = b.add_flip_flop("F2", p(1), 1.0, 2.0);
        b.connect(f1, f2, 10.0);
        b.connect(f2, f1, 4.0);
        let c = b.build().unwrap();
        let sol = min_cycle_time(&c).unwrap();
        assert!(
            (sol.cycle_time() - 13.0).abs() < 1e-6,
            "Tc = {}",
            sol.cycle_time()
        );
        assert_eq!(sol.departures(), &[0.0, 0.0]);
    }

    #[test]
    fn mixed_ff_latch_loop() {
        // FF → latch → FF loop over two phases.
        let mut b = CircuitBuilder::new(2);
        let f = b.add_flip_flop("F", p(1), 1.0, 2.0);
        let l = b.add_latch("L", p(2), 1.0, 2.0);
        b.connect(f, l, 10.0);
        b.connect(l, f, 10.0);
        let c = b.build().unwrap();
        let sol = min_cycle_time(&c).unwrap();
        // loop: dq_F + 10 (+ wait) + dq_L + 10 + setup_F ≤ Tc, achievable
        // with zero wait → Tc = 2+10+2+10+1 = 25
        assert!(
            (sol.cycle_time() - 25.0).abs() < 1e-6,
            "Tc = {}",
            sol.cycle_time()
        );
    }

    #[test]
    fn latch_without_fanin_needs_only_setup_width() {
        let mut b = CircuitBuilder::new(1);
        b.add_latch("solo", p(1), 7.0, 8.0);
        let c = b.build().unwrap();
        let sol = min_cycle_time(&c).unwrap();
        // T1 ≥ setup = 7 and T1 ≤ Tc → Tc = 7
        assert!((sol.cycle_time() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn hold_annotations_do_not_affect_long_path_optimum() {
        let mut b = CircuitBuilder::new(2);
        let a = b.add_sync(Synchronizer::latch("A", p(1), 10.0, 10.0).with_hold(2.0));
        let c2 = b.add_latch("B", p(2), 10.0, 10.0);
        b.connect_min_max(a, c2, 5.0, 20.0);
        b.connect_min_max(c2, a, 5.0, 60.0);
        let c = b.build().unwrap();
        let sol = min_cycle_time(&c).unwrap();
        assert!((sol.cycle_time() - 100.0).abs() < 1e-6);
        assert_eq!(c.sync(LatchId::new(0)).kind, SyncKind::Latch);
    }
}
