#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Run from the repository root:
#
#   ./ci.sh
#
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo clippy unwrap/expect audit (lp + core, warn-level)"
# The numerical kernels must not panic on pathological inputs: surface
# every unwrap/expect in non-test code for review. Warn-level (not -D):
# the remaining sites are audited, documented panics.
cargo clippy -q -p smo-lp -p smo-core --lib -- \
  -W clippy::unwrap_used -W clippy::expect_used

echo "==> cargo test"
cargo test -q

echo "==> stress harness (pathological circuits, both simplex variants)"
cargo test -q --test stress

echo "==> warm-start differential + sweep determinism suite"
cargo test -q --test warm_start

echo "==> smo lint + smo analyze + certified smo solve over circuits/*.ckt"
# `lint` exits non-zero on error-severity findings; `analyze` exits 2 when
# the combinatorial bracket, the presolved solve and the plain solve
# disagree (an internal soundness bug). Either failure fails CI.
cargo build -q --release --bin smo
for ckt in circuits/*.ckt; do
  echo "--- $ckt"
  ./target/release/smo lint "$ckt"
  ./target/release/smo analyze "$ckt"
  # Every shipped netlist must solve with every LP verdict independently
  # KKT-checked (exit 0 and an explicit `certified: true` line). Plain
  # grep (not -q): -q closes the pipe early and breaks the writer.
  ./target/release/smo solve "$ckt" | grep "certified: true" > /dev/null
  # Short certified Monte-Carlo sweep: exercises the warm-start repair and
  # the worker pool end to end on every shipped netlist (~2 s total).
  ./target/release/smo sweep "$ckt" --runs 4 --jobs 2 --certify > /dev/null
done

echo "==> bench_sweep (regenerates BENCH_sweep.json, enforces warm >= 2x cold)"
cargo run -q --release -p smo-bench --bin bench_sweep

echo "CI OK"
