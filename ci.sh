#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Run from the repository root:
#
#   ./ci.sh
#
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo test"
cargo test -q

echo "==> smo lint + smo analyze over circuits/*.ckt"
# `lint` exits non-zero on error-severity findings; `analyze` exits 2 when
# the combinatorial bracket, the presolved solve and the plain solve
# disagree (an internal soundness bug). Either failure fails CI.
cargo build -q --release --bin smo
for ckt in circuits/*.ckt; do
  echo "--- $ckt"
  ./target/release/smo lint "$ckt"
  ./target/release/smo analyze "$ckt"
done

echo "CI OK"
