#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Run from the repository root:
#
#   ./ci.sh
#
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo test"
cargo test -q

echo "CI OK"
