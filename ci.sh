#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Run from the repository root:
#
#   ./ci.sh
#
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo clippy unwrap/expect audit (lp + core, warn-level)"
# The numerical kernels must not panic on pathological inputs: surface
# every unwrap/expect in non-test code for review. Warn-level (not -D):
# the remaining sites are audited, documented panics.
cargo clippy -q -p smo-lp -p smo-core --lib -- \
  -W clippy::unwrap_used -W clippy::expect_used

echo "==> cargo test"
cargo test -q

echo "==> stress harness (pathological circuits, both simplex variants)"
cargo test -q --test stress

echo "==> scale-differential suite (dense vs revised vs sparse-LU, release)"
# The non-ignored tests (shipped netlists, stress suite, proptest-random
# circuits) also run under plain `cargo test` above; release mode adds the
# ignored 1k/5k-row generated-datapath tests, which are deadline-bounded
# so a solver regression fails fast instead of hanging CI.
cargo test -q --release --test scale_differential -- --include-ignored

echo "==> warm-start differential + sweep determinism suite"
cargo test -q --test warm_start

echo "==> pricing-equivalence suite (devex vs partial vs bland, release)"
# Every pricing rule must produce the same certified verdict and optimum
# on the shipped netlists, the stress suite, and proptest-random
# circuits — the contract that makes `--pricing` a pure performance
# knob. Release mode keeps the sparse stress solves fast.
cargo test -q --release --test pricing_equivalence

echo "==> smo lint + smo analyze + certified smo solve over circuits/*.ckt"
# `lint` exits non-zero on error-severity findings; `analyze` exits 2 when
# the combinatorial bracket, the presolved solve, the plain solve or the
# graph backend disagree (an internal soundness bug). Either failure
# fails CI.
cargo build -q --release --bin smo
for ckt in circuits/*.ckt; do
  echo "--- $ckt"
  ./target/release/smo lint "$ckt"
  ./target/release/smo analyze "$ckt"
  # Every shipped netlist must solve with every verdict independently
  # checked (exit 0 and an explicit `certified: true` line). Plain
  # grep (not -q): -q closes the pipe early and breaks the writer.
  ./target/release/smo solve "$ckt" | grep "certified: true" > /dev/null
  # Graph-vs-LP differential: both backends must solve every shipped
  # netlist, certified, and report the same optimum to the printed
  # precision. The `backend: graph` grep doubles as proof the fast path
  # actually engages rather than silently falling back. Capture the full
  # output first: truncating smo's stdout mid-write (e.g. `| head`)
  # breaks the pipe under `set -o pipefail`.
  graph_out=$(./target/release/smo solve "$ckt" --backend graph)
  lp_out=$(./target/release/smo solve "$ckt" --backend lp)
  printf '%s\n' "$graph_out" | grep "backend: graph" > /dev/null
  printf '%s\n' "$graph_out" | grep "certified: true" > /dev/null
  graph_tc=$(printf '%s\n' "$graph_out" | sed -n 1p)
  lp_tc=$(printf '%s\n' "$lp_out" | sed -n 1p)
  if [ "$graph_tc" != "$lp_tc" ]; then
    echo "BACKEND DISAGREEMENT on $ckt: graph '$graph_tc' vs lp '$lp_tc'" >&2
    exit 1
  fi
  # Short certified Monte-Carlo sweep: exercises the warm-start repair and
  # the worker pool end to end on every shipped netlist (~2 s total).
  ./target/release/smo sweep "$ckt" --runs 4 --jobs 2 --certify > /dev/null
done

echo "==> smo check over circuits/*.ckt (race gate)"
# The one-shot static gate: lint passes + solve + short-path race
# analysis. Every shipped netlist must pass clean — except the
# deliberately racy demo, which must trip the gate with exit code 2 and
# a measured double-clocking-race witness.
for ckt in circuits/*.ckt; do
  echo "--- check $ckt"
  if [ "$ckt" = "circuits/race_demo.ckt" ]; then
    set +e
    check_out=$(./target/release/smo check "$ckt")
    check_rc=$?
    set -e
    if [ "$check_rc" -ne 2 ]; then
      echo "smo check $ckt: expected exit code 2, got $check_rc" >&2
      printf '%s\n' "$check_out" >&2
      exit 1
    fi
    printf '%s\n' "$check_out" | grep 'error: \[double-clocking-race\]' > /dev/null
    printf '%s\n' "$check_out" | grep 'retires the race' > /dev/null
  else
    ./target/release/smo check "$ckt" > /dev/null
  fi
done

echo "==> panic-freedom attributes on the numerical fast-path modules"
# The graph solver and the fast-path router must keep their deny-level
# unwrap/expect gates: a panic inside either would take down every
# `--backend auto` caller on pathological inputs.
grep -q 'deny(clippy::unwrap_used, clippy::expect_used)' crates/lp/src/graph.rs
grep -q 'deny(clippy::unwrap_used, clippy::expect_used)' crates/core/src/fastpath.rs
# The sparse-LU simplex kernel, its hypersparse solve/pricing modules,
# and the large-circuit generator feed the scaling gates: all keep the
# same deny-level attribute.
grep -q 'deny(clippy::unwrap_used, clippy::expect_used)' crates/lp/src/sparse.rs
grep -q 'deny(clippy::unwrap_used, clippy::expect_used)' crates/lp/src/hypersparse.rs
grep -q 'deny(clippy::unwrap_used, clippy::expect_used)' crates/lp/src/pricing.rs
grep -q 'deny(clippy::unwrap_used, clippy::expect_used)' crates/gen/src/datapath.rs

echo "==> panic-freedom attributes across the analysis layer"
# The static-analysis crate backs the `smo check` CI gate itself: every
# source file keeps the deny-level unwrap/expect attribute so a
# pathological netlist degrades to an AnalyzeError, never a panic.
for f in crates/analyze/src/*.rs; do
  grep -q 'deny(clippy::unwrap_used, clippy::expect_used)' "$f" \
    || { echo "missing unwrap/expect deny attribute: $f" >&2; exit 1; }
done

echo "==> smo serve daemon gate (mixed batch over circuits/*.ckt, hostile inputs)"
# Start the daemon on an ephemeral port, drive every shipped netlist
# through solve/check plus a malformed netlist and an expired deadline,
# and require: structured answers for everything (zero crashes), the
# race demo's finding visible through the wire, and a clean drain.
serve_log=$(mktemp)
./target/release/smo serve --addr 127.0.0.1:0 > "$serve_log" &
serve_pid=$!
for _ in $(seq 1 50); do
  grep -q 'listening on ' "$serve_log" && break
  sleep 0.1
done
serve_addr=$(sed -n 's/^listening on //p' "$serve_log" | head -n 1)
if [ -z "$serve_addr" ]; then
  echo "smo serve did not come up" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
for ckt in circuits/*.ckt; do
  # Every netlist must solve and check over the wire (status ok ⇒ exit 0);
  # solving twice proves the result cache answers byte-compatibly.
  ./target/release/smo call "$serve_addr" solve "$ckt" > /dev/null
  ./target/release/smo call "$serve_addr" solve "$ckt" | grep '"cached":true' > /dev/null
  check_line=$(./target/release/smo call "$serve_addr" check "$ckt")
  if [ "$ckt" = "circuits/race_demo.ckt" ]; then
    printf '%s\n' "$check_line" | grep 'double-clocking-race' > /dev/null
  fi
done
# Hostile inputs must come back as structured errors, not crashes.
bad_ckt=$(mktemp --suffix=.ckt)
printf 'this is not a netlist\n!!!\n' > "$bad_ckt"
set +e
bad_line=$(./target/release/smo call "$serve_addr" solve "$bad_ckt")
bad_rc=$?
expired_line=$(./target/release/smo call "$serve_addr" solve circuits/gaas_mips.ckt --deadline-ms 0)
expired_rc=$?
set -e
rm -f "$bad_ckt"
[ "$bad_rc" -ne 0 ] && printf '%s\n' "$bad_line" | grep '"kind":"parse"' > /dev/null
[ "$expired_rc" -ne 0 ] && printf '%s\n' "$expired_line" | grep '"kind":"budget"' > /dev/null
# The daemon must still be healthy after the hostile batch (no panics)…
./target/release/smo call "$serve_addr" stats | grep '"panics":0' > /dev/null
# …and must drain cleanly on shutdown.
./target/release/smo call "$serve_addr" shutdown | grep '"draining":true' > /dev/null
wait "$serve_pid"
grep -q 'drained, exiting' "$serve_log"
rm -f "$serve_log"

echo "==> bench_serve (regenerates BENCH_serve.json, enforces shed>0 under overload)"
./target/release/smo bench-serve --out BENCH_serve.json > /dev/null

echo "==> bench_sweep (regenerates BENCH_sweep.json, enforces warm >= 2x cold)"
cargo run -q --release -p smo-bench --bin bench_sweep

echo "==> bench_fastpath (regenerates BENCH_fastpath.json, enforces graph >= 10x lp)"
cargo run -q --release -p smo-bench --bin bench_fastpath

echo "==> 5k-row generated circuit: certified sparse-LU solve under a deadline"
# End-to-end through the CLI: `smo gen` emits a 5k-constraint-row
# pipelined datapath, and the sparse-LU variant must return a certified
# optimum inside an explicit wall-clock budget.
gen_ckt=$(mktemp --suffix=.ckt)
./target/release/smo gen --latches 1667 --seed 7 --out "$gen_ckt"
./target/release/smo solve "$gen_ckt" --backend lp --variant sparse --time-limit 300 \
  | grep "certified: true" > /dev/null
rm -f "$gen_ckt"

echo "==> bench_scale (dense vs revised vs sparse-LU scaling gate)"
# Quick mode enforces the speedup convention at CI-friendly sizes, then
# re-measures sparse pivots/sec at the 10k-row anchor and fails if it
# drops below half the checked-in sparse_pivots_per_sec_10k — the
# throughput regression gate for the hypersparse kernels — all without
# touching the checked-in curve. The full BENCH_scale.json regeneration
# (6 sizes to ~50k rows; dense/revised are deadline-bounded, the jumbo
# sparse solves get up to 1800 s each) runs with SCALE_FULL=1 ./ci.sh
# and enforces the >= 10x gate at the largest three-way size.
if [ "${SCALE_FULL:-0}" = "1" ]; then
  cargo run -q --release -p smo-bench --bin bench_scale
else
  cargo run -q --release -p smo-bench --bin bench_scale -- --quick
fi

echo "CI OK"
