//! `smo` — command-line optimal-clocking tool.
//!
//! The 1990 implementation was "a simple parser, a dense-matrix LP solver
//! … and graphical output routines"; this binary is the same package around
//! the library:
//!
//! ```text
//! smo optimize <netlist>            minimum cycle time + optimal schedule
//! smo solve    <netlist>            certified minimum cycle time (KKT-checked LPs)
//! smo report   <netlist>            full timing report (slacks, critical segments)
//! smo verify   <netlist> Tc s1,w1 [s2,w2 …]   check a concrete schedule
//! smo simulate <netlist> [waves]    behavioural simulation at the optimum
//! smo dot      <netlist>            Graphviz export
//! smo lp       <netlist>            CPLEX LP-format dump of problem P2
//! smo lint     <netlist>            structural sanity checks
//! smo check    <netlist>            lint + solve + short-path race analysis
//! smo analyze  <netlist>            cycle-time bracket + presolve report
//! smo diagnose <netlist> [--cycle-time T]   why is there no schedule at T?
//! smo sweep    <netlist> [--param tc|delay]  warm-started parameter sweep
//! ```
//!
//! Long-lived use goes through the daemon (same code path, same JSON):
//!
//! ```text
//! smo serve    [--addr A] [--workers N] [--queue N]   timing daemon
//! smo call     <addr> <cmd> [netlist] [flags]         one request to a daemon
//! smo bench-serve [--quick]                           daemon load test
//! ```
//!
//! Netlists use the `smo_circuit::netlist` text format; files containing
//! `gate`/`wire` lines are parsed gate-level and extracted automatically.

use smo::analyze::{analyze, check, diagnose, lint, AnalyzeError, CheckOptions, PassConfig, Rule};
use smo::api::{solve_json, sweep_json, ParseLimits};
use smo::circuit::EdgeId;
use smo::circuit::{lump_equivalent_latches, netlist, to_dot, Circuit, ClockSchedule};
use smo::gen::datapath::{pipelined_datapath, DatapathConfig};
use smo::lp::{Pricing, SimplexVariant};
use smo::sim::{monte_carlo, simulate, MonteCarloOptions, SimOptions};
use smo::timing::{
    graph_feasible_at, min_cycle_time, min_cycle_time_with, render_solution, sweep_cycle_time,
    timing_report, verify, Backend, MlpOptions, SweepOptions, SweepParam, TimingModel,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  smo optimize <netlist>                         minimum cycle time + schedule
  smo solve    <netlist> [--backend auto|graph|lp] [--no-certify]
               [--variant dense|revised|sparse]
               [--pricing devex|partial|bland] [--max-input-mb N]
               [--time-limit <secs>] [--json]
                                                 minimum cycle time with every
                                                 solver verdict independently
                                                 checked: KKT certificates on
                                                 the simplex path, a re-checked
                                                 critical cycle on the graph
                                                 fast path (exit 1 if any
                                                 check cannot be satisfied);
                                                 `auto` (default) solves
                                                 difference-only models on the
                                                 graph and warm-starts the
                                                 simplex otherwise; --pricing
                                                 picks the sparse variant's
                                                 pivot-selection rule (default
                                                 `partial`: candidate-list
                                                 devex — same verdicts and
                                                 optimum on every setting);
                                                 --max-input-mb N lifts the
                                                 netlist input limits to N MiB
                                                 (default 4; lines/elements
                                                 scale with it) for generated
                                                 100k-latch circuits
  smo gen      [--latches N | --stages S --width W] [--phases K] [--fanin F]
               [--delay-min A] [--delay-max B] [--seed S] [--out FILE]
                                                 seeded pipelined-datapath
                                                 generator: K-phase pipeline,
                                                 byte-identical netlist for
                                                 identical flags (stdout or
                                                 FILE); lint-clean by
                                                 construction, built for the
                                                 1k-100k-latch scaling range
  smo report   <netlist>                         full timing report
  smo verify   <netlist> <Tc> <s,w> [<s,w> ...] [--backend auto|graph|lp]
                                                 check a concrete schedule;
                                                 with the graph backend also
                                                 reports whether ANY schedule
                                                 exists at Tc (exit 2 if that
                                                 cross-check contradicts the
                                                 row-by-row verdict)
  smo simulate <netlist> [waves]                 behavioural simulation
  smo dot      <netlist>                         Graphviz export
  smo lp       <netlist>                         LP-format dump of problem P2
  smo lump     <netlist>                         bus-lumped netlist (stdout)
  smo lint     <netlist> [--json]                structural sanity checks
                                                 (exit 1 on error findings)
  smo check    <netlist> [--cycle-time T] [--backend auto|graph|lp] [--json]
               [--allow RULE] [--deny RULE]
                                                 one-shot static gate: every
                                                 lint pass + the cycle-time
                                                 solve + short-path race
                                                 analysis; each double-clocking
                                                 race carries a witness naming
                                                 the short path and the
                                                 clock-separation fix (error
                                                 if the short path is a
                                                 measured `mindelay`, warn
                                                 under the max-delay
                                                 assumption). --allow
                                                 suppresses a rule, --deny
                                                 escalates it to error; exit 2
                                                 on any error-severity finding
  smo analyze  <netlist> [--json]                combinatorial cycle-time
                                                 bracket, LP optimum and
                                                 presolve breakdown; exit 2
                                                 if the cross-checks disagree
                                                 (an internal soundness bug)
  smo diagnose <netlist> [--cycle-time T] [--json]
                                                 minimum cycle time, or a
                                                 Farkas-certified explanation
                                                 of why T is unachievable
  smo montecarlo <netlist> <scale> [runs]        jittered-margin campaign at
                                                 scale × the optimal schedule
  smo sweep    <netlist> [--param tc|delay] [--runs N] [--jobs N] [--json]
               [--edge E] [--max-delay D] [--spread S] [--seed S] [--certify]
               [--variant dense|revised|sparse]
               [--pricing devex|partial|bland] [--max-input-mb N]
                                                 warm-started cycle-time sweep:
                                                 `tc` grids one edge's delay
                                                 (exact breakpoints included),
                                                 `delay` jitters every delay
                                                 by ±spread; output is
                                                 identical for any --jobs
  smo serve    [--addr A] [--workers N] [--queue N]
                                                 long-lived timing daemon:
                                                 line-delimited JSON over TCP
                                                 with per-request deadlines,
                                                 bounded queueing + load
                                                 shedding, result caches and
                                                 graceful degradation under
                                                 load (see DESIGN.md)
  smo call     <addr> <cmd> [netlist] [--id I] [--deadline-ms N]
               [--backend auto|graph|lp] [--no-certify] [--cycle-time T]
               [--phase s,w ...] [--param tc|delay] [--runs N] [--edge E]
               [--spread S] [--seed S] [--pricing devex|partial|bland]
                                                 send one request to a daemon
                                                 (cmd: ping, stats, shutdown,
                                                 solve, verify, check,
                                                 diagnose, sweep) and print
                                                 the response line; exit 1 on
                                                 an error response
  smo bench-serve [--quick] [--out FILE]         daemon load generator: three
                                                 scenarios incl. forced
                                                 overload; writes
                                                 BENCH_serve.json";

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (cmd, rest) = args.split_first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "optimize" => {
            let circuit = load(rest.first().ok_or("missing netlist path")?)?;
            let sol = min_cycle_time(&circuit).map_err(|e| e.to_string())?;
            println!("optimal cycle time: {:.6}", sol.cycle_time());
            print!("{}", render_solution(&circuit, &sol));
            Ok(ExitCode::SUCCESS)
        }
        "solve" => {
            let mut path = None;
            let mut options = MlpOptions {
                backend: Backend::Auto,
                ..Default::default()
            };
            let mut json = false;
            let mut max_mb = None;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--no-certify" => options.certify = false,
                    "--backend" => {
                        options.backend = it
                            .next()
                            .ok_or("--backend needs a value (auto, graph or lp)")?
                            .parse()?;
                    }
                    "--variant" => options.simplex = parse_variant(&mut it)?,
                    "--pricing" => options.pricing = parse_pricing(&mut it)?,
                    "--max-input-mb" => max_mb = Some(parse_arg(&mut it, "--max-input-mb")?),
                    "--time-limit" => {
                        let secs: f64 = it
                            .next()
                            .ok_or("--time-limit needs a value in seconds")?
                            .parse()
                            .map_err(|e| format!("bad time limit: {e}"))?;
                        if !secs.is_finite() || secs <= 0.0 {
                            return Err(format!(
                                "time limit must be a positive number of seconds, got {secs}"
                            ));
                        }
                        options.time_limit = Some(std::time::Duration::from_secs_f64(secs));
                    }
                    "--json" => json = true,
                    other if path.is_none() && !other.starts_with('-') => {
                        path = Some(other.to_string());
                    }
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            let circuit = load_with(&path.ok_or("missing netlist path")?, &input_limits(max_mb)?)?;
            let sol = min_cycle_time_with(&circuit, &options).map_err(|e| e.to_string())?;
            if json {
                println!("{}", solve_json(&sol));
            } else {
                println!("optimal cycle time: {:.6}", sol.cycle_time());
                println!(
                    "backend: {}",
                    if sol.graph_certificate().is_some() {
                        "graph (exact min-cycle-ratio)"
                    } else {
                        "lp (simplex)"
                    }
                );
                println!("certified: {}", sol.certified());
                for (i, cert) in sol.certificates().iter().enumerate() {
                    println!("  lp {}: {cert}", i + 1);
                }
                if let Some(gc) = sol.graph_certificate() {
                    println!("  graph: {gc}");
                }
                print!("{}", render_solution(&circuit, &sol));
            }
            // `certify` on and a returned solution imply every solver
            // verdict passed its independent check (KKT on the simplex
            // path, the re-derived critical cycle on the graph path);
            // `certified()` can only be false here when the user asked for
            // --no-certify on a simplex-path solve.
            Ok(if options.certify && !sol.certified() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "gen" => {
            let mut config = DatapathConfig::default();
            let mut latches: Option<usize> = None;
            let mut stages: Option<usize> = None;
            let mut width: Option<usize> = None;
            let mut seed: u64 = 0;
            let mut out: Option<String> = None;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--latches" => latches = Some(parse_arg(&mut it, "--latches")?),
                    "--stages" => stages = Some(parse_arg(&mut it, "--stages")?),
                    "--width" => width = Some(parse_arg(&mut it, "--width")?),
                    "--phases" => config.phases = parse_arg(&mut it, "--phases")?,
                    "--fanin" => config.fanin = parse_arg(&mut it, "--fanin")?,
                    "--delay-min" => config.delay_range.0 = parse_arg(&mut it, "--delay-min")?,
                    "--delay-max" => config.delay_range.1 = parse_arg(&mut it, "--delay-max")?,
                    "--seed" => seed = parse_arg(&mut it, "--seed")?,
                    "--out" => out = Some(parse_arg(&mut it, "--out")?),
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            if let Some(n) = latches {
                if stages.is_some() || width.is_some() {
                    return Err("--latches is exclusive with --stages/--width".into());
                }
                let sized = DatapathConfig::with_latches(n);
                config.stages = sized.stages;
                config.width = sized.width;
            }
            if let Some(s) = stages {
                config.stages = s;
            }
            if let Some(w) = width {
                config.width = w;
            }
            // Validate up front so bad flags are CLI errors, not panics.
            if !(2..=4).contains(&config.phases) {
                return Err(format!("--phases must be 2..=4, got {}", config.phases));
            }
            if config.stages < config.phases {
                return Err(format!(
                    "need --stages >= --phases so every phase clocks a rank ({} < {})",
                    config.stages, config.phases
                ));
            }
            if config.width < 2 {
                return Err("need --width >= 2".into());
            }
            if !(1..=config.width).contains(&config.fanin) {
                return Err(format!(
                    "--fanin must be in 1..={}, got {}",
                    config.width, config.fanin
                ));
            }
            if !(config.delay_range.0 > 0.0 && config.delay_range.0 <= config.delay_range.1) {
                return Err(format!(
                    "delay range must be positive and non-empty, got {:?}",
                    config.delay_range
                ));
            }
            let circuit = pipelined_datapath(&config, seed);
            let text = netlist::write(&circuit);
            eprintln!(
                "generated {} latches ({} stages x {} wide), {} edges, {} phases, seed {seed}",
                circuit.num_latches(),
                config.stages,
                config.width,
                circuit.num_edges(),
                circuit.num_phases()
            );
            match out {
                Some(path) => {
                    std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?
                }
                None => print!("{text}"),
            }
            Ok(ExitCode::SUCCESS)
        }
        "report" => {
            let circuit = load(rest.first().ok_or("missing netlist path")?)?;
            let text =
                timing_report(&circuit, &MlpOptions::default()).map_err(|e| e.to_string())?;
            print!("{text}");
            Ok(ExitCode::SUCCESS)
        }
        "verify" => {
            let mut backend = Backend::Auto;
            let mut positional: Vec<&String> = Vec::new();
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--backend" => {
                        backend = it
                            .next()
                            .ok_or("--backend needs a value (auto, graph or lp)")?
                            .parse()?;
                    }
                    _ => positional.push(arg),
                }
            }
            let mut it = positional.into_iter();
            let circuit = load(it.next().ok_or("missing netlist path")?)?;
            let tc: f64 = it
                .next()
                .ok_or("missing cycle time")?
                .parse()
                .map_err(|e| format!("bad cycle time: {e}"))?;
            let mut starts = Vec::new();
            let mut widths = Vec::new();
            for pair in it {
                let (s, w) = pair
                    .split_once(',')
                    .ok_or_else(|| format!("expected start,width but got `{pair}`"))?;
                starts.push(s.parse::<f64>().map_err(|e| format!("bad start: {e}"))?);
                widths.push(w.parse::<f64>().map_err(|e| format!("bad width: {e}"))?);
            }
            if starts.len() != circuit.num_phases() {
                return Err(format!(
                    "{} phase(s) given but the circuit has {}",
                    starts.len(),
                    circuit.num_phases()
                ));
            }
            if widths.len() != circuit.num_phases() {
                return Err(format!(
                    "{} width(s) given but the circuit has {} phase(s); \
                     pass one start,width pair per phase",
                    widths.len(),
                    circuit.num_phases()
                ));
            }
            let sched = ClockSchedule::new(tc, starts, widths).map_err(|e| e.to_string())?;
            let report = verify(&circuit, &sched);
            // Graph cross-check: Bellman–Ford on the difference graph
            // decides whether ANY schedule exists at this cycle time. A
            // feasible concrete schedule is itself a witness, so
            // "row check feasible, graph says nothing exists" is an
            // internal soundness bug worth a loud exit code.
            let exists = if backend == Backend::Lp {
                None
            } else {
                graph_feasible_at(&circuit, tc).map_err(|e| e.to_string())?
            };
            if report.is_feasible() {
                println!("FEASIBLE (worst setup slack {:.4})", report.worst_slack());
                match exists {
                    Some(true) => println!("graph: confirmed, Tc = {tc} is achievable"),
                    Some(false) => {
                        eprintln!(
                            "verify error: the schedule passes the row checks but the \
                             difference graph reports no feasible schedule at Tc = {tc}"
                        );
                        return Ok(ExitCode::from(2));
                    }
                    None => {}
                }
                Ok(ExitCode::SUCCESS)
            } else {
                for v in report.violations() {
                    println!("VIOLATION: {v}");
                }
                println!("INFEASIBLE");
                match exists {
                    Some(true) => println!(
                        "graph: a different schedule IS feasible at Tc = {tc} \
                         (try `smo solve`)"
                    ),
                    Some(false) => println!("graph: no schedule at all exists at Tc = {tc}"),
                    None => {}
                }
                Ok(ExitCode::FAILURE)
            }
        }
        "simulate" => {
            let circuit = load(rest.first().ok_or("missing netlist path")?)?;
            let waves: usize = match rest.get(1) {
                Some(w) => w.parse().map_err(|e| format!("bad wave count: {e}"))?,
                None => 64,
            };
            if waves == 0 {
                return Err("wave count must be at least 1".into());
            }
            let sol = min_cycle_time(&circuit).map_err(|e| e.to_string())?;
            let trace = simulate(
                &circuit,
                sol.schedule(),
                &SimOptions {
                    max_waves: waves,
                    ..Default::default()
                },
            );
            println!(
                "simulated {} wave(s) at Tc = {:.4}: converged at {:?}, {} violation(s)",
                trace.waves(),
                sol.cycle_time(),
                trace.converged_at(),
                trace.violations().len()
            );
            for (id, s) in circuit.syncs() {
                println!(
                    "  {:16} D = {:8.4}  (analysis: {:8.4})",
                    s.name,
                    trace.steady_departures()[id.index()],
                    sol.departure(id)
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "dot" => {
            let circuit = load(rest.first().ok_or("missing netlist path")?)?;
            print!("{}", to_dot(&circuit));
            Ok(ExitCode::SUCCESS)
        }
        "lp" => {
            let circuit = load(rest.first().ok_or("missing netlist path")?)?;
            let model = TimingModel::build(&circuit).map_err(|e| e.to_string())?;
            print!("{}", smo::lp::write_lp(model.problem()));
            Ok(ExitCode::SUCCESS)
        }
        "lump" => {
            let circuit = load(rest.first().ok_or("missing netlist path")?)?;
            let (reduced, _) = lump_equivalent_latches(&circuit);
            eprintln!(
                "lumped {} → {} synchronizers, {} → {} paths",
                circuit.num_syncs(),
                reduced.num_syncs(),
                circuit.num_edges(),
                reduced.num_edges()
            );
            print!("{}", netlist::write(&reduced));
            Ok(ExitCode::SUCCESS)
        }
        "lint" => {
            let (path, json) = path_and_json(rest)?;
            let circuit = load(&path)?;
            let report = lint(&circuit);
            if json {
                println!("{}", report.to_json());
            } else {
                println!("{report}");
            }
            Ok(if report.has_errors() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "check" => {
            let mut path = None;
            let mut options = CheckOptions::default();
            let mut config = PassConfig::new();
            let mut json = false;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--cycle-time" => {
                        let t: f64 = it
                            .next()
                            .ok_or("--cycle-time needs a value")?
                            .parse()
                            .map_err(|e| format!("bad cycle time: {e}"))?;
                        if !t.is_finite() || t <= 0.0 {
                            return Err(format!("cycle time must be finite and positive, got {t}"));
                        }
                        options.cycle_time = Some(t);
                    }
                    "--backend" => {
                        options.backend = it
                            .next()
                            .ok_or("--backend needs a value (auto, graph or lp)")?
                            .parse()?;
                    }
                    "--allow" => config = config.allow(parse_rule(&mut it, "--allow")?),
                    "--deny" => config = config.deny(parse_rule(&mut it, "--deny")?),
                    "--json" => json = true,
                    other if path.is_none() && !other.starts_with('-') => {
                        path = Some(other.to_string());
                    }
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            options.config = config;
            let circuit = load(&path.ok_or("missing netlist path")?)?;
            match check(&circuit, &options) {
                Ok(report) => {
                    if json {
                        println!("{}", report.to_json());
                    } else {
                        println!("{report}");
                    }
                    Ok(if report.has_errors() {
                        ExitCode::from(2)
                    } else {
                        ExitCode::SUCCESS
                    })
                }
                // A solve failure means the race analysis never ran, not
                // that the circuit is clean: report it without the usage
                // banner (the arguments were fine).
                Err(e) => {
                    eprintln!("check error: {e}");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        "analyze" => {
            let (path, json) = path_and_json(rest)?;
            let circuit = load(&path)?;
            match analyze(&circuit) {
                Ok(report) => {
                    if json {
                        println!("{}", report.to_json());
                    } else {
                        print!("{report}");
                    }
                    Ok(ExitCode::SUCCESS)
                }
                // A failed cross-check is not a usage error: report it on
                // stderr with a distinct exit code and no usage banner.
                Err(
                    e @ (AnalyzeError::BoundsDisagree { .. }
                    | AnalyzeError::PresolveDisagree { .. }
                    | AnalyzeError::BackendDisagree { .. }),
                ) => {
                    eprintln!("analyze error: {e}");
                    Ok(ExitCode::from(2))
                }
                Err(e) => Err(e.to_string()),
            }
        }
        "diagnose" => {
            let mut path = None;
            let mut cycle_time = None;
            let mut json = false;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--cycle-time" => {
                        let t: f64 = it
                            .next()
                            .ok_or("--cycle-time needs a value")?
                            .parse()
                            .map_err(|e| format!("bad cycle time: {e}"))?;
                        if !t.is_finite() || t < 0.0 {
                            return Err(format!(
                                "cycle time must be finite and non-negative, got {t}"
                            ));
                        }
                        cycle_time = Some(t);
                    }
                    "--json" => json = true,
                    other if path.is_none() && !other.starts_with('-') => {
                        path = Some(other.to_string());
                    }
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            let circuit = load(&path.ok_or("missing netlist path")?)?;
            let d = diagnose(&circuit, cycle_time).map_err(|e| e.to_string())?;
            if json {
                println!("{}", d.to_json());
            } else {
                println!("{d}");
            }
            Ok(if d.is_feasible() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "montecarlo" => {
            let circuit = load(rest.first().ok_or("missing netlist path")?)?;
            let scale: f64 = rest
                .get(1)
                .ok_or("missing schedule scale (e.g. 0.95)")?
                .parse()
                .map_err(|e| format!("bad scale: {e}"))?;
            if !scale.is_finite() || scale <= 0.0 {
                return Err(format!(
                    "scale must be a positive finite number, got {scale}"
                ));
            }
            let runs: usize = match rest.get(2) {
                Some(r) => r.parse().map_err(|e| format!("bad run count: {e}"))?,
                None => 200,
            };
            if runs == 0 {
                return Err("run count must be at least 1".into());
            }
            let sol = min_cycle_time(&circuit).map_err(|e| e.to_string())?;
            let sched = sol.schedule().scaled(scale);
            let report = monte_carlo(
                &circuit,
                &sched,
                &MonteCarloOptions {
                    runs,
                    threads: std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1),
                    ..Default::default()
                },
            );
            println!(
                "Tc = {:.4} ({}× optimum): {}/{} runs failed ({:.1}%), {} setup violations, worst shortfall {:.4}",
                sched.cycle(),
                scale,
                report.failing_runs,
                report.runs,
                report.failure_rate() * 100.0,
                report.setup_violations,
                report.worst_shortfall
            );
            Ok(ExitCode::SUCCESS)
        }
        "sweep" => {
            let mut path = None;
            let mut param = None;
            let mut runs = 16usize;
            let mut jobs = 1usize;
            let mut edge = 0usize;
            let mut max_delay = None;
            let mut spread = 0.1f64;
            let mut seed = 0u64;
            let mut certify = false;
            let mut json = false;
            let mut variant = None;
            let mut pricing = Pricing::default();
            let mut max_mb = None;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--param" => {
                        param = Some(match it.next().map(String::as_str) {
                            Some("tc") => "tc",
                            Some("delay") => "delay",
                            other => {
                                return Err(format!(
                                    "--param must be `tc` or `delay`, got {other:?}"
                                ))
                            }
                        });
                    }
                    "--runs" => runs = parse_arg(&mut it, "--runs")?,
                    "--jobs" => jobs = parse_arg(&mut it, "--jobs")?,
                    "--edge" => edge = parse_arg(&mut it, "--edge")?,
                    "--max-delay" => max_delay = Some(parse_arg(&mut it, "--max-delay")?),
                    "--spread" => spread = parse_arg(&mut it, "--spread")?,
                    "--seed" => seed = parse_arg(&mut it, "--seed")?,
                    "--certify" => certify = true,
                    "--json" => json = true,
                    "--variant" => variant = Some(parse_variant(&mut it)?),
                    "--pricing" => pricing = parse_pricing(&mut it)?,
                    "--max-input-mb" => max_mb = Some(parse_arg(&mut it, "--max-input-mb")?),
                    other if path.is_none() && !other.starts_with('-') => {
                        path = Some(other.to_string());
                    }
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            let circuit = load_with(&path.ok_or("missing netlist path")?, &input_limits(max_mb)?)?;
            if runs == 0 {
                return Err("run count must be at least 1".into());
            }
            let param = match param.unwrap_or("delay") {
                "tc" => {
                    if edge >= circuit.num_edges() {
                        return Err(format!(
                            "--edge {edge} out of range ({} edges)",
                            circuit.num_edges()
                        ));
                    }
                    // Default range: up to twice the edge's present delay.
                    let max_delay =
                        max_delay.unwrap_or(2.0 * circuit.edge(EdgeId::new(edge)).max_delay);
                    SweepParam::Tc {
                        edge: EdgeId::new(edge),
                        max_delay,
                    }
                }
                _ => SweepParam::Delay { spread },
            };
            let mut options = SweepOptions {
                param,
                runs,
                seed,
                jobs,
                certify,
                pricing,
                ..Default::default()
            };
            if let Some(v) = variant {
                options.variant = v;
            }
            let reports = sweep_cycle_time(std::slice::from_ref(&circuit), &options)
                .map_err(|e| e.to_string())?;
            let report = &reports[0];
            if json {
                println!("{}", sweep_json(report, &options));
            } else {
                println!(
                    "base: Tc = {:.6} ({} cold pivots)",
                    report.base_cycle_time, report.base_iterations
                );
                println!(
                    "{} warm re-solve(s): Tc in [{:.6}, {:.6}], mean {:.6}, {} total pivots",
                    report.runs.len(),
                    report.min_cycle_time,
                    report.max_cycle_time,
                    report.mean_cycle_time,
                    report.warm_iterations
                );
                if !report.breakpoints.is_empty() {
                    let bps: Vec<String> = report
                        .breakpoints
                        .iter()
                        .map(|b| format!("{b:.6}"))
                        .collect();
                    println!("exact Tc*(Δ) breakpoints: {}", bps.join(", "));
                }
                for run in &report.runs {
                    println!(
                        "  run {:4}  param {:>12.6}  Tc {:>12.6}  pivots {:4}",
                        run.index, run.value, run.cycle_time, run.iterations
                    );
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "serve" => {
            let mut config = smo::api::ServerConfig::default();
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--addr" => {
                        config.addr = it.next().ok_or("--addr needs host:port")?.to_string();
                    }
                    "--workers" => {
                        config.max_active = parse_arg(&mut it, "--workers")?;
                        if config.max_active == 0 {
                            return Err("--workers must be at least 1".into());
                        }
                    }
                    "--queue" => config.max_queue = parse_arg(&mut it, "--queue")?,
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            let server = smo::api::serve(config).map_err(|e| format!("serve: {e}"))?;
            // The first line of output is machine-readable so scripts can
            // scrape the bound port (`--addr 127.0.0.1:0` picks one).
            println!("listening on {}", server.addr());
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            server.wait();
            println!("drained, exiting");
            Ok(ExitCode::SUCCESS)
        }
        "call" => {
            let mut it = rest.iter();
            let addr = it.next().ok_or("missing daemon address (host:port)")?;
            let cmd = it.next().ok_or(
                "missing command (ping, stats, shutdown, solve, verify, check, diagnose, sweep)",
            )?;
            let mut fields: Vec<(String, String)> = vec![("cmd".into(), json_str(cmd))];
            let mut netlist_path = None;
            let mut phases: Vec<String> = Vec::new();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--id" => fields.push((
                        "id".into(),
                        json_str(it.next().ok_or("--id needs a value")?),
                    )),
                    "--deadline-ms" => {
                        let ms: u64 = parse_arg(&mut it, "--deadline-ms")?;
                        fields.push(("deadline_ms".into(), ms.to_string()));
                    }
                    "--backend" => fields.push((
                        "backend".into(),
                        json_str(it.next().ok_or("--backend needs a value")?),
                    )),
                    "--no-certify" => fields.push(("certify".into(), "false".into())),
                    "--certify" => fields.push(("certify".into(), "true".into())),
                    "--cycle-time" => {
                        let t: f64 = parse_arg(&mut it, "--cycle-time")?;
                        fields.push(("cycle_time".into(), format!("{t}")));
                    }
                    "--phase" => {
                        let pair = it.next().ok_or("--phase needs start,width")?;
                        let (s, w) = pair
                            .split_once(',')
                            .ok_or_else(|| format!("expected start,width but got `{pair}`"))?;
                        let s: f64 = s.parse().map_err(|e| format!("bad start: {e}"))?;
                        let w: f64 = w.parse().map_err(|e| format!("bad width: {e}"))?;
                        phases.push(format!("[{s},{w}]"));
                    }
                    "--param" => fields.push((
                        "param".into(),
                        json_str(it.next().ok_or("--param needs tc or delay")?),
                    )),
                    "--runs" => {
                        let n: usize = parse_arg(&mut it, "--runs")?;
                        fields.push(("runs".into(), n.to_string()));
                    }
                    "--edge" => {
                        let n: usize = parse_arg(&mut it, "--edge")?;
                        fields.push(("edge".into(), n.to_string()));
                    }
                    "--spread" => {
                        let s: f64 = parse_arg(&mut it, "--spread")?;
                        fields.push(("spread".into(), format!("{s}")));
                    }
                    "--seed" => {
                        let s: u64 = parse_arg(&mut it, "--seed")?;
                        fields.push(("seed".into(), s.to_string()));
                    }
                    "--pricing" => {
                        // Parsed locally so typos fail here, not at the
                        // daemon.
                        let p = parse_pricing(&mut it)?;
                        fields.push(("pricing".into(), json_str(p.as_str())));
                    }
                    other if netlist_path.is_none() && !other.starts_with('-') => {
                        netlist_path = Some(other.to_string());
                    }
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            if let Some(path) = &netlist_path {
                // The netlist travels inline: the daemon never reads the
                // caller's filesystem, and escaping happens here in code
                // rather than in fragile shell quoting.
                let src = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                fields.push(("netlist".into(), json_str(&src)));
            }
            if !phases.is_empty() {
                fields.push(("phases".into(), format!("[{}]", phases.join(","))));
            }
            let request = format!(
                "{{{}}}",
                fields
                    .iter()
                    .map(|(k, v)| format!("\"{k}\":{v}"))
                    .collect::<Vec<_>>()
                    .join(",")
            );
            let mut client =
                smo::api::Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
            let response = client.call(&request).map_err(|e| format!("call: {e}"))?;
            println!("{response}");
            Ok(if response.contains("\"status\":\"ok\"") {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "bench-serve" => {
            let mut quick = false;
            let mut out_path = "BENCH_serve.json".to_string();
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--quick" => quick = true,
                    "--out" => {
                        out_path = it.next().ok_or("--out needs a path")?.to_string();
                    }
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            let json =
                smo::api::bench::run_bench(quick).map_err(|e| format!("bench-serve: {e}"))?;
            std::fs::write(&out_path, &json)
                .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            print!("{json}");
            eprintln!("wrote {out_path}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// JSON string literal for `smo call` request assembly.
fn json_str(s: &str) -> String {
    smo::api::json::escape(s)
}

/// Parses the rule name following `--allow` / `--deny`.
fn parse_rule(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<Rule, String> {
    let name = it
        .next()
        .ok_or_else(|| format!("{flag} needs a rule name"))?;
    Rule::from_name(name).ok_or_else(|| {
        let known: Vec<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
        format!(
            "unknown rule `{name}` for {flag}; known rules: {}",
            known.join(", ")
        )
    })
}

/// Parses the value following a flag, e.g. `--runs 32`.
fn parse_arg<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    it.next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|e| format!("bad {flag} value: {e}"))
}

/// Parses the value following `--pricing`.
fn parse_pricing(it: &mut std::slice::Iter<'_, String>) -> Result<Pricing, String> {
    it.next()
        .ok_or("--pricing needs a value (devex, partial or bland)")?
        .parse()
        .map_err(|e| format!("bad --pricing value: {e}"))
}

/// Parses the value following `--variant`.
fn parse_variant(it: &mut std::slice::Iter<'_, String>) -> Result<SimplexVariant, String> {
    match it.next().map(String::as_str) {
        Some("dense") => Ok(SimplexVariant::Dense),
        Some("revised") => Ok(SimplexVariant::Revised),
        Some("sparse") => Ok(SimplexVariant::SparseLu),
        Some(other) => Err(format!(
            "bad --variant `{other}` (expected dense, revised or sparse)"
        )),
        None => Err("--variant needs a value (dense, revised or sparse)".into()),
    }
}

/// Parses `<netlist> [--json]` argument lists (any order).
fn path_and_json(rest: &[String]) -> Result<(String, bool), String> {
    let mut path = None;
    let mut json = false;
    for arg in rest {
        match arg.as_str() {
            "--json" => json = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok((path.ok_or("missing netlist path")?, json))
}

/// Loads a netlist file, auto-detecting the gate-level dialect. Shares
/// the daemon's parser (and its default input limits).
fn load(path: &str) -> Result<Circuit, String> {
    load_with(path, &ParseLimits::default())
}

/// [`load`] with explicit parse limits (see [`input_limits`]).
fn load_with(path: &str, limits: &ParseLimits) -> Result<Circuit, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    smo::api::parse_netlist(&src, limits).map_err(|e| format!("{path}: {e}"))
}

/// Parse limits for a `--max-input-mb` value: the daemon's strict defaults
/// when absent; otherwise the byte/line/element caps scale together with
/// the requested megabytes (the per-line caps stay put — bigger circuits
/// mean more lines, not longer ones). The daemon itself always keeps the
/// defaults: inline requests from untrusted clients do not get a knob.
fn input_limits(max_mb: Option<usize>) -> Result<ParseLimits, String> {
    match max_mb {
        None => Ok(ParseLimits::default()),
        Some(0) => Err("--max-input-mb must be at least 1".into()),
        Some(mb) => Ok(ParseLimits {
            max_bytes: mb.saturating_mul(1 << 20),
            max_lines: mb.saturating_mul(50_000),
            max_elements: mb.saturating_mul(25_000),
            ..ParseLimits::default()
        }),
    }
}
