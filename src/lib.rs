//! # smo — optimal clocking for latch-controlled synchronous circuits
//!
//! Facade crate for the workspace reproducing Sakallah, Mudge & Olukotun,
//! *"Analysis and Design of Latch-Controlled Synchronous Digital Circuits"*
//! (DAC 1990 / IEEE TCAD 1992). It re-exports the member crates:
//!
//! * [`lp`] — dense simplex linear-programming solver with duals and
//!   parametric RHS analysis ([`smo_lp`]),
//! * [`circuit`] — k-phase clock and latch-level circuit model
//!   ([`smo_circuit`]),
//! * [`timing`] — the SMO timing engine: constraint generation, Algorithm
//!   MLP, schedule verification, baselines ([`smo_core`]),
//! * [`sim`] — discrete-event behavioural simulator ([`smo_sim`]),
//! * [`gen`] — circuit generators and the paper's example circuits
//!   ([`smo_gen`]),
//! * [`analyze`] — circuit lints and Farkas-certified infeasibility
//!   diagnosis ([`smo_analyze`]),
//! * [`api`] — the shared request/response layer behind the CLI and the
//!   `smo serve` daemon: line-delimited JSON protocol, deadlines,
//!   backpressure, caches and graceful degradation ([`smo_api`]).
//!
//! ## Quickstart
//!
//! ```
//! use smo::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Example 1 of the paper: two-stage loop under a two-phase clock.
//! let circuit = smo::gen::paper::example1(80.0);
//! let solution = min_cycle_time(&circuit)?;
//! assert!((solution.cycle_time() - 110.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

pub use smo_analyze as analyze;
pub use smo_api as api;
pub use smo_circuit as circuit;
pub use smo_core as timing;
pub use smo_gen as gen;
pub use smo_lp as lp;
pub use smo_sim as sim;

/// Convenient glob-import surface: the types and functions most programs
/// need.
pub mod prelude {
    pub use smo_circuit::{Circuit, CircuitBuilder, ClockSpec, LatchId, PhaseId, SyncKind};
    pub use smo_core::{min_cycle_time, verify, ClockSchedule, TimingSolution};
}
