//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a deterministic, dependency-free substitute covering
//! exactly the surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen_bool}` over
//! integer and float ranges. The generator is SplitMix64 — statistically
//! solid for test/benchmark workloads, not cryptographic.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic seeding (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}

signed_int_sample_range!(i64, i32, i16, i8, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic RNG standing in for `rand::rngs::StdRng`.
    ///
    /// Internally SplitMix64 (Steele, Lea & Flood 2014): one 64-bit word
    /// of state, full 2^64 period, passes BigCrush when used as here.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..4.0);
            assert!((0.25..4.0).contains(&f));
            let g = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn unit_interval_is_half_open() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
