//! Offline stand-in for `serde_derive`.
//!
//! The companion `serde` stub blanket-implements its marker traits for
//! every type, so these derives can expand to nothing: the derive
//! attribute stays valid at use sites while all real work is done by the
//! blanket impls.

use proc_macro::TokenStream;

/// No-op replacement for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
