//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal API-compatible substitute. The real serde
//! data model is not reproduced: `Serialize`/`Deserialize` are marker
//! traits with blanket implementations, and the derive macros expand to
//! nothing. This is sufficient because the workspace never serializes
//! through serde (all JSON output is hand-rolled); the derives merely
//! decorate public types so the API is source-compatible with real serde
//! if the dependency is ever swapped back.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Blanket-implemented for all
/// types; carries no behaviour in this offline stub.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`. Blanket-implemented for
/// all types; carries no behaviour in this offline stub.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
