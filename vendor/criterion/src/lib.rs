//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal API-compatible substitute. It keeps the
//! workspace's `[[bench]]` targets compiling and runnable: each benchmark
//! body is executed a handful of times and its wall-clock time printed,
//! with none of criterion's statistics, warm-up, or reporting machinery.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// How many times [`Bencher::iter`] runs each routine when the bench
/// binary is executed directly. Kept tiny: the stub measures nothing
/// statistical, it only proves the routine runs.
const STUB_ITERS: u32 = 3;

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one benchmark within a group (mirrors
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, `name/param`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing harness passed to benchmark closures (mirrors
/// `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    label: String,
}

impl Bencher {
    /// Runs `routine` a few times and prints the mean wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..STUB_ITERS {
            std_black_box(routine());
        }
        let per_iter = start.elapsed() / STUB_ITERS;
        println!("bench {:<40} ~{per_iter:?}/iter (stub)", self.label);
    }
}

/// A named collection of related benchmarks (mirrors
/// `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores measurement time.
    pub fn measurement_time(&mut self, _t: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, id.into().id),
        };
        f(&mut b);
        self
    }

    /// Runs one benchmark that borrows a setup value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, id.into().id),
        };
        f(&mut b, input);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; the stub has no CLI parsing.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            label: id.into().id,
        };
        f(&mut b);
        self
    }
}

/// Bundles benchmark functions into one group runner (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench binary (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_the_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(10);
            group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| runs += 1));
            group.bench_with_input(BenchmarkId::from_parameter("p"), &41, |b, &x| {
                b.iter(|| black_box(x + 1))
            });
            group.finish();
        }
        assert_eq!(runs, STUB_ITERS);
    }
}
