//! Test execution: configuration, RNG, and the case-running loop.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleRange, SeedableRng};

/// Subset of `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case did not succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case asked to be discarded (`prop_assume!`); a fresh input is
    /// drawn instead.
    Reject(String),
    /// The case failed an assertion; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a [`TestCaseError::Fail`].
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a [`TestCaseError::Reject`].
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Result of one test case, as returned by the closure `proptest!`
/// generates.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies.
///
/// Wraps the vendored deterministic [`StdRng`]; strategies use the typed
/// helpers rather than raw bits.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// An RNG with an explicit seed (used by strategy unit tests).
    pub fn seed_from(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples uniformly from any range the vendored `rand` supports.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.inner.gen_range(range)
    }

    /// Uniform draw from `lo..=hi`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        self.inner.gen_range(lo..=hi)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Runs a strategy against a test closure for the configured number of
/// cases (subset of `proptest::test_runner::TestRunner`).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
    name: &'static str,
}

/// FNV-1a, used to derive a stable per-test seed from the test's path.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl TestRunner {
    /// Creates a runner whose RNG seed is derived from `name`, so each
    /// test is deterministic across runs without a persistence file.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let seed = fnv1a(name.as_bytes());
        TestRunner {
            config,
            rng: TestRng::seed_from(seed),
            name,
        }
    }

    /// Runs `test` against `cases` inputs drawn from `strategy`.
    ///
    /// # Panics
    ///
    /// Panics when a case fails (with the failing input's debug repr — no
    /// shrinking) or when the rejection budget is exhausted.
    pub fn run<S: Strategy>(
        &mut self,
        strategy: &S,
        mut test: impl FnMut(S::Value) -> TestCaseResult,
    ) {
        let cases = self.config.cases;
        // Same spirit as proptest's max_global_rejects: generous, bounded.
        let max_rejects = (cases as u64) * 64 + 1024;
        let mut rejects: u64 = 0;
        let mut passed: u32 = 0;
        while passed < cases {
            let Some(value) = strategy.sample(&mut self.rng) else {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "{}: too many strategy rejections ({rejects}) — filters are too strict",
                    self.name
                );
                continue;
            };
            let repr = format!("{value:?}");
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "{}: too many rejected cases ({rejects}); last: {why}",
                        self.name
                    );
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "{}: property failed after {passed} passing case(s)\n\
                         {message}\nfailing input: {repr}",
                        self.name
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_the_configured_number_of_cases() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(37), "unit::count");
        let mut calls = 0;
        runner.run(&(0usize..100), |_| {
            calls += 1;
            Ok(())
        });
        assert_eq!(calls, 37);
    }

    #[test]
    fn rejects_draw_replacement_inputs() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10), "unit::rejects");
        let mut passed = 0;
        runner.run(&(0usize..100), |v| {
            if v % 2 == 0 {
                return Err(TestCaseError::reject("odd only"));
            }
            passed += 1;
            Ok(())
        });
        assert_eq!(passed, 10);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10), "unit::fails");
        runner.run(&(0usize..100), |_| Err(TestCaseError::fail("always fails")));
    }

    #[test]
    fn seeding_is_stable_per_name() {
        let sample = |name: &'static str| {
            let mut runner = TestRunner::new(ProptestConfig::with_cases(5), name);
            let mut seen = Vec::new();
            runner.run(&(0usize..1_000_000), |v| {
                seen.push(v);
                Ok(())
            });
            seen
        };
        assert_eq!(sample("unit::stable"), sample("unit::stable"));
        assert_ne!(sample("unit::stable"), sample("unit::other"));
    }
}
