//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal API-compatible substitute. It reproduces
//! the subset of proptest the workspace uses — the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`/`prop_filter`, range/tuple/`Just`/string
//! strategies, [`collection::vec`], [`sample::select`],
//! [`bool::weighted`]/[`bool::ANY`], and the `proptest!`/`prop_assert!`
//! family of macros — with two deliberate simplifications:
//!
//! 1. **No shrinking.** A failing case reports the generated input but is
//!    not minimized.
//! 2. **Deterministic seeding.** Each test derives its RNG seed from the
//!    test's path, so runs are reproducible without a persistence file.
//!
//! Rejection sampling (`prop_filter`, `prop_assume!`) retries with a
//! bounded budget, like the real crate.

pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};

/// Strategies over `bool` (mirrors `proptest::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean strategy (mirrors `proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.gen_bool(0.5))
        }
    }

    /// Strategy producing `true` with probability `p`.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        p: f64,
    }

    /// Returns a strategy that yields `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "weighted: p out of range: {p}");
        Weighted { p }
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.gen_bool(self.p))
        }
    }
}

/// Strategies over collections (mirrors `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Returns a strategy producing vectors whose length lies in `size`
    /// and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let len = rng.usize_inclusive(self.size.lo, self.size.hi);
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.sample(rng)?);
            }
            Some(out)
        }
    }
}

/// Strategies that sample from explicit value sets (mirrors
/// `proptest::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// Strategy choosing uniformly from a fixed list of values.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Returns a strategy that picks one of `options` uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty option list");
        Select { options }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            let i = rng.usize_inclusive(0, self.options.len() - 1);
            Some(self.options[i].clone())
        }
    }
}

/// Everything a typical proptest consumer imports (mirrors
/// `proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Expands a block of property tests.
///
/// Supports the common form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, y in 0.0f64..1.0) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            let mut runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            runner.run(&strategy, |__proptest_values| {
                let ($($arg,)+) = __proptest_values;
                $body
                #[allow(unreachable_code)]
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Fails the current test case (mirrors `proptest::prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality within a test case (mirrors
/// `proptest::prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Asserts inequality within a test case (mirrors
/// `proptest::prop_assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Discards the current test case, drawing a fresh input (mirrors
/// `proptest::prop_assume!`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
