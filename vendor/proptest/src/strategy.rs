//! The [`Strategy`] trait and the combinators/primitive strategies used by
//! the workspace's property tests.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply draws a value from a [`TestRng`]. `None` signals a
/// rejected draw (e.g. a failed [`prop_filter`](Strategy::prop_filter));
/// the runner retries with a bounded budget.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value, or `None` to reject this draw.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then uses it to build and sample a second
    /// strategy (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values for which `f` returns `false`.
    ///
    /// `reason` is reported if the rejection budget is exhausted.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            reason: reason.into(),
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let seed = self.inner.sample(rng)?;
        (self.f)(seed).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: String,
}

impl<S, F> Filter<S, F> {
    /// The reason reported when this filter exhausts the reject budget.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        let v = self.inner.sample(rng)?;
        if (self.f)(&v) {
            Some(v)
        } else {
            None
        }
    }
}

/// Strategy that always yields a clone of one fixed value (mirrors
/// `proptest::strategy::Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

numeric_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64, f32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Characters drawn for string strategies: printable ASCII plus a few
/// multi-byte code points, and never control characters (approximating
/// the `\PC` character class the workspace's regex strategies use).
const STRING_POOL: &[char] = &[
    ' ', '!', '"', '#', '$', '%', '&', '\'', '(', ')', '*', '+', ',', '-', '.', '/', '0', '1', '2',
    '3', '4', '5', '6', '7', '8', '9', ':', ';', '<', '=', '>', '?', '@', 'A', 'B', 'C', 'D', 'E',
    'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M', 'N', 'O', 'P', 'Q', 'R', 'S', 'T', 'U', 'V', 'W', 'X',
    'Y', 'Z', '[', '\\', ']', '^', '_', '`', 'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k',
    'l', 'm', 'n', 'o', 'p', 'q', 'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z', '{', '|', '}', '~',
    'é', 'Ω', 'λ', '中', '©', '±', '\u{00A0}', '🦀',
];

/// A `&str` acts as a regex-shaped string strategy, as in real proptest.
///
/// This stub does not implement regexes: it draws characters from a
/// printable, control-free pool and honours only a trailing `{m,n}`
/// length quantifier (defaulting to lengths `0..=32`). That is faithful
/// enough for the fuzz-style `"\PC{0,300}"` strategies the workspace
/// uses.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> Option<String> {
        let (lo, hi) = parse_length_quantifier(self).unwrap_or((0, 32));
        let len = rng.usize_inclusive(lo, hi);
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            out.push(STRING_POOL[rng.usize_inclusive(0, STRING_POOL.len() - 1)]);
        }
        Some(out)
    }
}

/// Extracts `(m, n)` from a pattern ending in `{m,n}`.
fn parse_length_quantifier(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let open = body.rfind('{')?;
    let (lo, hi) = body[open + 1..].split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::seed_from(0xFEED)
    }

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut r = rng();
        let s = (1usize..=4, -1.0f64..1.0);
        for _ in 0..200 {
            let (a, b) = s.sample(&mut r).expect("no rejection");
            assert!((1..=4).contains(&a));
            assert!((-1.0..1.0).contains(&b));
        }
    }

    #[test]
    fn map_filter_flat_map_compose() {
        let mut r = rng();
        let s = (1usize..10)
            .prop_flat_map(|n| (Just(n), 0usize..n))
            .prop_map(|(n, k)| (n, k, n * 10 + k))
            .prop_filter("even tag", |&(_, _, tag)| tag % 2 == 0);
        let mut accepted = 0;
        for _ in 0..200 {
            if let Some((n, k, tag)) = s.sample(&mut r) {
                assert!(k < n);
                assert_eq!(tag, n * 10 + k);
                assert_eq!(tag % 2, 0);
                accepted += 1;
            }
        }
        assert!(accepted > 0, "filter rejected every draw");
    }

    #[test]
    fn string_strategy_honours_length_quantifier() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "\\PC{0,300}".sample(&mut r).expect("no rejection");
            assert!(s.chars().count() <= 300);
            assert!(!s.chars().any(char::is_control));
        }
    }

    #[test]
    fn length_quantifier_parsing() {
        assert_eq!(parse_length_quantifier("\\PC{0,300}"), Some((0, 300)));
        assert_eq!(parse_length_quantifier("[a-z]{2,5}"), Some((2, 5)));
        assert_eq!(parse_length_quantifier("plain"), None);
    }
}
