//! Integration tests for the `smo check` layer: backend-independence of
//! the short-path hold slacks, arithmetic soundness of every reported
//! race witness, and byte-stability of the findings JSON schema.
//!
//! These pin the three contracts `check` is built on:
//!
//! 1. hold slacks are a property of the circuit, not of the solver — the
//!    graph and LP backends agree within [`Tol::TIGHT`] on shipped *and*
//!    random circuits;
//! 2. every [`ShortPathWitness`] re-derives from the circuit and the
//!    canonical schedule by plain arithmetic — the witness is a
//!    certificate, not a diagnostic string;
//! 3. the findings JSON is byte-deterministic with a fixed key order, so
//!    machine consumers can parse `lint --json` and `check --json` with
//!    one schema.

mod common;

use common::{load_circuit, SHIPPED_NETLISTS};
use proptest::prelude::*;
use smo::analyze::{check, lint, CheckOptions};
use smo::circuit::{netlist, Circuit, CircuitBuilder, SyncKind};
use smo::gen::random::{random_circuit, GenConfig};
use smo::lp::Tol;
use smo::timing::{race_analysis, Backend, RaceOptions};

/// Rebuilds `c` with a measured contamination delay of `frac · Δ` on every
/// edge and a hold requirement of `hold` on every synchronizer, turning a
/// long-path-only circuit into one with a non-trivial short-path side.
/// The long-path model (and hence the solved `T_c`) is unchanged: holds
/// and min delays only participate in the race analysis.
fn with_short_paths(c: &Circuit, frac: f64, hold: f64) -> Circuit {
    let mut b = CircuitBuilder::new(c.num_phases());
    for (_, s) in c.syncs() {
        b.add_sync(s.clone().with_hold(hold));
    }
    for e in c.edges() {
        b.connect_min_max(e.from, e.to, frac * e.max_delay, e.max_delay);
    }
    b.build().expect("rebuild preserves validity")
}

fn on(backend: Backend) -> RaceOptions {
    RaceOptions {
        backend,
        ..RaceOptions::default()
    }
}

/// Slack agreement, `+∞`-aware: early non-convergence yields infinite
/// slacks and both backends must land in the same regime.
fn close(a: f64, b: f64, tol: f64) -> bool {
    (a.is_infinite() && b.is_infinite() && a == b) || (a - b).abs() <= tol
}

#[test]
fn backends_agree_on_hold_slacks_for_shipped_circuits() {
    let mut shipped: Vec<&str> = SHIPPED_NETLISTS.to_vec();
    shipped.push("circuits/race_demo.ckt");
    for f in shipped {
        let circuit = load_circuit(f);
        let lp = race_analysis(&circuit, &on(Backend::Lp))
            .unwrap_or_else(|e| panic!("{f}: LP analysis fails: {e}"));
        // The graph backend refuses mixed models; where it runs, it must
        // agree with the LP slack for slack.
        let Ok(graph) = race_analysis(&circuit, &on(Backend::Graph)) else {
            continue;
        };
        let tol = Tol::TIGHT.abs_for(lp.cycle_time());
        assert!(
            (graph.cycle_time() - lp.cycle_time()).abs() <= tol,
            "{f}: Tc {} vs {}",
            graph.cycle_time(),
            lp.cycle_time()
        );
        for (i, (g, l)) in graph.edge_slacks().iter().zip(lp.edge_slacks()).enumerate() {
            assert!(close(*g, *l, tol), "{f} edge {i}: {g} vs {l}");
        }
        assert_eq!(graph.races().len(), lp.races().len(), "{f}");
    }
}

#[test]
fn race_demo_witness_numbers_are_exact_and_cycle_independent() {
    // The shipped racy demo: `result → status` is a same-phase FF pair
    // whose measured contamination delay (0.2) plus the source clock-to-Q
    // (0.25) lands 0.15 before status's hold window (0.6) closes. Both
    // ends of a same-phase separation move with T_c, so the slack is
    // −0.15 at ANY cycle time.
    let circuit = load_circuit("circuits/race_demo.ckt");
    for cycle_time in [None, Some(10.0), Some(1000.0)] {
        let report = race_analysis(
            &circuit,
            &RaceOptions {
                cycle_time,
                ..RaceOptions::default()
            },
        )
        .expect("race_demo analyses");
        assert_eq!(report.races().len(), 1, "at {cycle_time:?}");
        let w = &report.races()[0];
        assert_eq!((w.from.as_str(), w.to.as_str()), ("result", "status"));
        assert!(w.min_specified, "the demo race must be measured");
        assert!(w.dst_is_ff);
        assert!((w.slack + 0.15).abs() < 1e-9, "slack {}", w.slack);
        assert!((w.separation_fix - 0.15).abs() < 1e-9);
    }
}

#[test]
fn check_gates_race_demo_but_passes_every_other_shipped_netlist() {
    for f in SHIPPED_NETLISTS {
        let report = check(&load_circuit(f), &CheckOptions::default())
            .unwrap_or_else(|e| panic!("{f}: {e}"));
        assert!(!report.has_errors(), "{f} must pass the gate:\n{report}");
    }
    let racy = check(
        &load_circuit("circuits/race_demo.ckt"),
        &CheckOptions::default(),
    )
    .expect("race_demo checks");
    assert!(racy.has_errors(), "race_demo must fail the gate");
}

// ---------------------------------------------------------------------
// JSON schema stability: exact bytes, fixed key order.
// ---------------------------------------------------------------------

/// `lint --json` golden bytes on a fixed fixture. Any change to the key
/// set, key order, indentation, or sort order of the findings array is a
/// breaking change for machine consumers and must show up here.
#[test]
fn lint_json_schema_is_byte_stable() {
    let src = "\
clock 3
latch L1 phase=1 setup=1 dq=2
latch L2 phase=2 setup=1 dq=2
latch orphan phase=1 setup=1 dq=2
path L1 L2 delay=5
path L2 L1 delay=5
";
    let report = lint(&netlist::parse(src).expect("fixture parses"));
    let expected = r#"{
  "clean": false,
  "errors": 0,
  "warnings": 2,
  "infos": 0,
  "findings": [
    {"rule": "dead-phase", "severity": "warn", "location": "φ3", "message": "phase φ3 controls no synchronizer"},
    {"rule": "unconstrained-sync", "severity": "warn", "location": "orphan", "message": "latch `orphan` has no fan-in and no fan-out; it constrains nothing"}
  ]
}"#;
    assert_eq!(report.to_json(), expected);
}

/// `check --json` golden bytes on the shipped racy demo at a pinned cycle
/// time: the wrapper keys (`clean`, `cycle_time`, `worst_hold_slack`,
/// `races`, counts) and the embedded findings array — which must use the
/// *same* per-finding schema as `lint --json` — are all pinned.
#[test]
fn check_json_schema_is_byte_stable() {
    let circuit = load_circuit("circuits/race_demo.ckt");
    let options = CheckOptions {
        cycle_time: Some(10.0),
        ..CheckOptions::default()
    };
    let report = check(&circuit, &options).expect("race_demo checks");
    let expected = r#"{
  "clean": false,
  "cycle_time": 10,
  "worst_hold_slack": -0.15000000000000036,
  "races": 1,
  "errors": 1,
  "warnings": 1,
  "infos": 0,
  "findings": [
    {"rule": "double-clocking-race", "severity": "error", "location": "result→status#3", "message": "double-clocking race result → status (edge #3): new data departs result at E + Δ_DQ = 0.0000 + 0.2500 after the φ1 rise, crosses the short path δ = 0.2000 with phase shift S_{1,1} = -10.0000, and reaches status at -9.5500 — 0.1500 before its hold deadline -9.4000 (previous active edge + hold); increasing the φ1→φ1 clock separation by 0.1500 retires the race"},
    {"rule": "hold-margin", "severity": "warn", "location": "result→status#3", "message": "flip-flop `status` requires hold 0.6 but the same-phase path from `result` can arrive after only 0.2"}
  ]
}"#;
    assert_eq!(report.to_json(), expected);
    // And the run is deterministic end to end.
    assert_eq!(
        check(&circuit, &options).expect("re-check runs").to_json(),
        expected
    );
}

/// Every findings entry, on every shipped circuit, matches the four-key
/// object shape in the pinned key order — the schema holds beyond the
/// golden fixtures.
#[test]
fn every_findings_entry_matches_the_schema_shape() {
    let mut shipped: Vec<&str> = SHIPPED_NETLISTS.to_vec();
    shipped.push("circuits/race_demo.ckt");
    for f in shipped {
        let report = check(&load_circuit(f), &CheckOptions::default())
            .unwrap_or_else(|e| panic!("{f}: {e}"));
        let json = report.to_json();
        for key in [
            "\"clean\": ",
            "\"cycle_time\": ",
            "\"worst_hold_slack\": ",
            "\"races\": ",
            "\"errors\": ",
            "\"warnings\": ",
            "\"infos\": ",
            "\"findings\": [",
        ] {
            assert!(json.contains(key), "{f}: missing {key} in\n{json}");
        }
        for line in json.lines().filter(|l| l.trim_start().starts_with("{\"")) {
            let t = line.trim_start().trim_end_matches(&[',', '}'][..]);
            assert!(t.starts_with("{\"rule\": \""), "{f}: bad entry {line}");
            let rest = ["\"severity\": \"", "\"location\": \"", "\"message\": \""];
            let mut pos = 0;
            for key in rest {
                let found = t[pos..]
                    .find(key)
                    .unwrap_or_else(|| panic!("{f}: {key} out of order in {line}"));
                pos += found + key.len();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Property tests.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Hold slacks are backend-independent: on random latch-only circuits
    /// (the graph backend's native domain) dressed with measured short
    /// paths, the graph and LP backends agree on the cycle time, on every
    /// edge hold slack, and on every per-synchronizer fan-in minimum,
    /// all within `Tol::TIGHT` at the solved `T_c`.
    #[test]
    fn prop_hold_slacks_are_backend_independent(
        phases in 1usize..=3,
        latches in 2usize..=8,
        edges in 2usize..=14,
        seed in 0u64..10_000,
        frac in 0.2f64..0.9,
        hold in 0.0f64..1.5,
    ) {
        let cfg = GenConfig { phases, latches, edges, ..Default::default() };
        let circuit = with_short_paths(&random_circuit(&cfg, seed), frac, hold);
        let lp = race_analysis(&circuit, &on(Backend::Lp))
            .expect("LP analyses generated circuits");
        let graph = match race_analysis(&circuit, &on(Backend::Graph)) {
            Ok(r) => r,
            // The graph backend refuses models outside the difference
            // fragment; backend-independence is vacuous there.
            Err(_) => return Ok(()),
        };
        let tol = Tol::TIGHT.abs_for(lp.cycle_time());
        prop_assert!(
            (graph.cycle_time() - lp.cycle_time()).abs() <= tol,
            "Tc {} vs {}", graph.cycle_time(), lp.cycle_time()
        );
        for (i, (g, l)) in graph.edge_slacks().iter().zip(lp.edge_slacks()).enumerate() {
            prop_assert!(close(*g, *l, tol), "edge {}: {} vs {}", i, g, l);
        }
        for (i, (g, l)) in graph.latch_slacks().iter().zip(lp.latch_slacks()).enumerate() {
            match (g, l) {
                (Some(g), Some(l)) => prop_assert!(close(*g, *l, tol), "sync {}: {} vs {}", i, g, l),
                (None, None) => {}
                _ => prop_assert!(false, "sync {}: fan-in disagreement", i),
            }
        }
    }

    /// Every reported race is a certificate: the witness re-derives by
    /// plain arithmetic from the circuit and the canonical schedule — the
    /// named edge exists with exactly the witness's delays, the phase
    /// shift and hold deadline recompute from the schedule, the arrival
    /// is the stated sum, and the violated bound reproduces. Conversely,
    /// every edge slack below the feasibility threshold has a witness.
    #[test]
    fn prop_every_race_has_a_reproducing_short_path(
        phases in 1usize..=3,
        latches in 2usize..=8,
        edges in 2usize..=14,
        seed in 0u64..10_000,
        frac in 0.05f64..0.6,
        hold in 0.0f64..3.0,
    ) {
        // Mix flip-flops in deterministically from the seed (the vendored
        // proptest tops out at 6-tuple strategies).
        let ff = (seed % 8) as f64 / 10.0;
        let cfg = GenConfig {
            phases, latches, edges, flip_flop_prob: ff, ..Default::default()
        };
        let circuit = with_short_paths(&random_circuit(&cfg, seed), frac, hold);
        let report = race_analysis(&circuit, &on(Backend::Lp))
            .expect("LP analyses generated circuits");
        let schedule = report.schedule();
        let tc = report.cycle_time();
        let threshold = Tol::FEAS.abs_for(tc);
        let eps = 1e-9 * (1.0 + tc.abs());

        for w in report.races() {
            let e = &circuit.edges()[w.edge.index()];
            let src = circuit.sync(e.from);
            let dst = circuit.sync(e.to);
            // The witness names a real edge with the witness's delays.
            prop_assert_eq!(&w.from, &src.name);
            prop_assert_eq!(&w.to, &dst.name);
            prop_assert_eq!(w.short_delay, e.short_delay());
            prop_assert_eq!(w.min_specified, e.min_specified);
            prop_assert_eq!(w.dq, src.dq);
            prop_assert_eq!(w.hold, dst.hold);
            prop_assert_eq!(w.dst_is_ff, dst.kind == SyncKind::FlipFlop);
            // Shift and deadline recompute from the schedule.
            prop_assert!((w.shift - schedule.shift(src.phase, dst.phase)).abs() <= eps);
            let deadline = match dst.kind {
                SyncKind::Latch => schedule.width(dst.phase) - tc + dst.hold,
                SyncKind::FlipFlop => dst.hold - tc,
            };
            prop_assert!((w.deadline - deadline).abs() <= eps);
            // The early change is the fixpoint value for the source.
            prop_assert_eq!(w.early_change, report.early_changes()[e.from.index()]);
            // The arithmetic identities of the violated inequality.
            let arrival = w.early_change + w.dq + w.short_delay + w.shift;
            prop_assert!((arrival - w.early_arrival).abs() <= eps);
            prop_assert!((w.slack - (w.early_arrival - w.deadline)).abs() <= eps);
            prop_assert!((w.separation_fix + w.slack).abs() <= eps);
            // The bound is genuinely violated, beyond the tolerance.
            prop_assert!(w.slack < -threshold, "slack {} vs threshold {}", w.slack, threshold);
            prop_assert_eq!(w.slack, report.edge_slacks()[w.edge.index()]);
        }

        // Completeness: a witness for every sub-threshold edge slack.
        let negative = report
            .edge_slacks()
            .iter()
            .filter(|s| **s < -threshold)
            .count();
        prop_assert_eq!(negative, report.races().len());
    }
}
