//! End-to-end tests for the `smo serve` daemon: golden wire-protocol
//! envelopes, deadline expiry over the socket, panic isolation +
//! quarantine, backpressure shedding, graceful drain, and a hostile
//! corpus sweep (every checked-in circuit, the stress generators,
//! malformed and oversized inputs) that must never crash the server.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use smo::api::{serve, Client, Engine, EngineConfig, Json, Load, ServerConfig};
use smo::circuit::netlist;
use std::time::Duration;

/// Escapes a netlist into a JSON string literal.
fn js(s: &str) -> String {
    smo::api::json::escape(s)
}

/// Builds a solve request line for an inline netlist.
fn solve_line(id: &str, netlist: &str) -> String {
    format!(
        "{{\"id\":{},\"cmd\":\"solve\",\"netlist\":{}}}",
        js(id),
        js(netlist)
    )
}

/// Parses a response line and returns (status, kind-or-empty).
fn classify(line: &str) -> (String, String) {
    let v = Json::parse(line).expect("response must be valid JSON");
    let status = v.get("status").and_then(Json::as_str).unwrap().to_string();
    let kind = v
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    (status, kind)
}

fn read_circuit(name: &str) -> String {
    std::fs::read_to_string(format!("circuits/{name}")).unwrap()
}

fn start_server(max_active: usize, max_queue: usize) -> smo::api::ServerHandle {
    let config = ServerConfig {
        max_active,
        max_queue,
        ..Default::default()
    };
    serve(config).expect("bind")
}

// ---------------------------------------------------------------------
// Golden envelope bytes: these strings ARE the wire protocol. If one of
// these assertions breaks, a client somewhere breaks with it.
// ---------------------------------------------------------------------

#[test]
fn golden_control_envelopes() {
    let e = Engine::new(EngineConfig::default());
    let ping = e.handle_line("{\"id\":\"p\",\"cmd\":\"ping\"}", Load::IDLE);
    assert_eq!(
        ping.line,
        "{\"id\":\"p\",\"status\":\"ok\",\"degradation\":\"full\",\"cached\":false,\
         \"result\":{\"ok\":true}}"
    );
    let shutdown = e.handle_line("{\"id\":\"bye\",\"cmd\":\"shutdown\"}", Load::IDLE);
    assert!(shutdown.shutdown);
    assert_eq!(
        shutdown.line,
        "{\"id\":\"bye\",\"status\":\"ok\",\"degradation\":\"full\",\"cached\":false,\
         \"result\":{\"draining\":true}}"
    );
}

#[test]
fn golden_error_envelopes() {
    let e = Engine::new(EngineConfig::default());

    // Malformed JSON: bad-request, id unknown so null.
    let bad = e.handle_line("this is not json", Load::IDLE);
    let v = Json::parse(&bad.line).unwrap();
    assert!(matches!(v.get("id"), Some(Json::Null)));
    assert_eq!(v.get("status").and_then(Json::as_str), Some("error"));
    let err = v.get("error").unwrap();
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("bad-request"));
    assert_eq!(err.get("retryable").and_then(Json::as_bool), Some(false));

    // Expired deadline: exact bytes.
    let line = format!(
        "{{\"id\":\"d\",\"cmd\":\"solve\",\"deadline_ms\":0,\"netlist\":{}}}",
        js(&read_circuit("example1.ckt"))
    );
    let expired = e.handle_line(&line, Load::IDLE);
    assert_eq!(
        expired.line,
        "{\"id\":\"d\",\"status\":\"error\",\"degradation\":\"full\",\"cached\":false,\
         \"error\":{\"kind\":\"budget\",\
         \"message\":\"deadline expired before the request started\",\
         \"retryable\":false}}"
    );

    // Load-shed and drain refusals: exact bytes, retryable.
    assert_eq!(
        e.shed_reply(Some("s")),
        "{\"id\":\"s\",\"status\":\"error\",\"degradation\":\"uncertified\",\"cached\":false,\
         \"error\":{\"kind\":\"overload\",\
         \"message\":\"server saturated (active and queued slots full); retry with backoff\",\
         \"retryable\":true}}"
    );
    assert_eq!(
        e.shutting_down_reply(None),
        "{\"id\":null,\"status\":\"error\",\"degradation\":\"uncertified\",\"cached\":false,\
         \"error\":{\"kind\":\"shutting-down\",\
         \"message\":\"server is draining for shutdown\",\
         \"retryable\":true}}"
    );
}

#[test]
fn golden_solve_result_bytes() {
    // Pins the full ok envelope for Example 2 of the paper — field order,
    // number formatting, degradation stamp, everything.
    let e = Engine::new(EngineConfig::default());
    let reply = e.handle_line(&solve_line("s1", &read_circuit("example2.ckt")), Load::IDLE);
    assert_eq!(
        reply.line,
        "{\"id\":\"s1\",\"status\":\"ok\",\"degradation\":\"full\",\"cached\":false,\
         \"result\":{\"cycle_time\":31,\"certified\":true,\"backend\":\"graph\",\
         \"graph_certificate\":{\"valid\":true,\"implied_lower\":31,\"witness_rows\":3,\
         \"max_violation\":0},\"lp_iterations\":0,\"update_iterations\":2,\
         \"num_constraints\":32,\"certificates\":[]}}"
    );
    // Byte-identical on the cache hit, except for the cached flag.
    let again = e.handle_line(&solve_line("s1", &read_circuit("example2.ckt")), Load::IDLE);
    assert_eq!(
        again.line,
        reply.line.replace("\"cached\":false", "\"cached\":true")
    );
}

// ---------------------------------------------------------------------
// Live-socket behaviour.
// ---------------------------------------------------------------------

#[test]
fn deadline_expiry_over_the_wire() {
    let server = start_server(2, 2);
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // A large circuit forced onto the LP backend with a 1 ms deadline:
    // the solver must notice mid-flight and return a structured budget
    // error rather than running to completion.
    let big = netlist::write(&smo::gen::random::random_circuit(
        &smo::gen::random::GenConfig {
            latches: 120,
            edges: 360,
            ..Default::default()
        },
        7,
    ));
    let line = format!(
        "{{\"id\":\"slow\",\"cmd\":\"solve\",\"backend\":\"lp\",\"deadline_ms\":1,\"netlist\":{}}}",
        js(&big)
    );
    let resp = client.call(&line).unwrap();
    let (status, kind) = classify(&resp);
    assert_eq!(status, "error");
    assert_eq!(kind, "budget");

    // The same netlist without a deadline still solves: deadline expiry
    // does not poison the circuit cache.
    let ok = client.call(&solve_line("ok", &big)).unwrap();
    assert_eq!(classify(&ok).0, "ok");

    server.shutdown();
    server.wait();
}

#[test]
fn panic_isolation_and_quarantine() {
    let server = start_server(2, 2);
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // `#!panic` is the engine's test hook: the handler genuinely panics
    // inside catch_unwind, exactly like an engine bug on hostile input.
    let poison = "#!panic\n# never parsed\n";
    let first = client.call(&solve_line("p1", poison)).unwrap();
    let (status, kind) = classify(&first);
    assert_eq!((status.as_str(), kind.as_str()), ("error", "panic"));

    // The daemon is still alive and serving on the same connection…
    let pong = client.call("{\"id\":\"alive\",\"cmd\":\"ping\"}").unwrap();
    assert_eq!(classify(&pong).0, "ok");
    // …and on fresh connections.
    let mut second = Client::connect(&addr).unwrap();
    let resolve = second
        .call(&solve_line("fine", &read_circuit("example1.ckt")))
        .unwrap();
    assert_eq!(classify(&resolve).0, "ok");

    // Resubmitting the poisoned input is fenced off without re-running.
    let again = second.call(&solve_line("p2", poison)).unwrap();
    let (status, kind) = classify(&again);
    assert_eq!((status.as_str(), kind.as_str()), ("error", "quarantined"));

    // debug-panic exercises the same path for control flow.
    let dp = client.call("{\"cmd\":\"debug-panic\"}").unwrap();
    assert_eq!(classify(&dp), ("error".into(), "panic".into()));
    let pong = client.call("{\"cmd\":\"ping\"}").unwrap();
    assert_eq!(classify(&pong).0, "ok");

    server.shutdown();
    server.wait();
}

#[test]
fn hostile_corpus_never_crashes_the_daemon() {
    let server = start_server(4, 8);
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let mut sent = 0usize;

    let mut expect_structured = |line: &str, client: &mut Client| {
        let resp = client.call(line).expect("daemon must keep answering");
        let v = Json::parse(&resp).expect("every response is one JSON object");
        let status = v.get("status").and_then(Json::as_str).unwrap();
        assert!(status == "ok" || status == "error", "status was {status}");
        if status == "error" {
            let kind = v
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str)
                .unwrap();
            assert!(!kind.is_empty());
        }
        sent += 1;
    };

    // Every checked-in circuit through every work command.
    for entry in std::fs::read_dir("circuits").unwrap() {
        let path = entry.unwrap().path();
        let src = std::fs::read_to_string(&path).unwrap();
        let n = js(&src);
        expect_structured(
            &format!("{{\"cmd\":\"solve\",\"netlist\":{n}}}"),
            &mut client,
        );
        expect_structured(
            &format!("{{\"cmd\":\"check\",\"netlist\":{n}}}"),
            &mut client,
        );
        expect_structured(
            &format!("{{\"cmd\":\"diagnose\",\"cycle_time\":1,\"netlist\":{n}}}"),
            &mut client,
        );
        // …and truncated / corrupted variants of it.
        let truncated = &src[..src.len() / 2];
        expect_structured(
            &format!("{{\"cmd\":\"solve\",\"netlist\":{}}}", js(truncated)),
            &mut client,
        );
    }

    // The stress-generator suite: numerically nasty but valid circuits.
    for (name, circuit) in smo::gen::stress::suite(3) {
        let n = js(&netlist::write(&circuit));
        let line = format!("{{\"id\":{},\"cmd\":\"solve\",\"netlist\":{n}}}", js(&name));
        expect_structured(&line, &mut client);
    }

    // Malformed inputs: garbage JSON, wrong types, unknown commands,
    // binary noise, deeply nested JSON.
    for bad in [
        "{".to_string(),
        "[1,2,3]".to_string(),
        "{\"cmd\":42}".to_string(),
        "{\"cmd\":\"frobnicate\"}".to_string(),
        "{\"cmd\":\"solve\",\"netlist\":7}".to_string(),
        "{\"cmd\":\"solve\"}".to_string(),
        "\u{1}\u{2}binary\u{3}".to_string(),
        format!("{}1{}", "[".repeat(100), "]".repeat(100)),
    ] {
        expect_structured(&bad, &mut client);
    }

    // Oversized netlist: exceeds ParseLimits, must come back `limit`.
    let huge = "a".repeat((4 << 20) + 1);
    let resp = client
        .call(&format!("{{\"cmd\":\"solve\",\"netlist\":{}}}", js(&huge)))
        .unwrap();
    assert_eq!(classify(&resp), ("error".into(), "limit".into()));

    // After all of that the daemon still drains cleanly.
    let stats = client.call("{\"cmd\":\"stats\"}").unwrap();
    let v = Json::parse(&stats).unwrap();
    assert_eq!(
        v.get("result")
            .and_then(|r| r.get("panics"))
            .and_then(Json::as_u64),
        Some(0),
        "hostile corpus must not panic the engine"
    );
    assert!(sent > 20, "corpus should exercise many requests");
    server.shutdown();
    server.wait();
}

#[test]
fn overload_sheds_instead_of_buffering() {
    // One execution slot, zero queue: a second concurrent request must be
    // shed with a structured, retryable overload error.
    let server = serve(ServerConfig {
        max_active: 1,
        max_queue: 0,
        ..Default::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();

    // Occupy the only slot with a deliberately slow LP solve.
    let big = netlist::write(&smo::gen::random::random_circuit(
        &smo::gen::random::GenConfig {
            latches: 100,
            edges: 300,
            ..Default::default()
        },
        11,
    ));
    let slow_line = format!(
        "{{\"id\":\"slow\",\"cmd\":\"solve\",\"backend\":\"lp\",\"netlist\":{}}}",
        js(&big)
    );
    let addr2 = addr.clone();
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(&addr2).unwrap();
        c.call(&slow_line).unwrap()
    });

    // Wait for the slow request to actually hold the slot, then poke.
    std::thread::sleep(Duration::from_millis(150));
    let mut c = Client::connect(&addr).unwrap();
    // Control commands bypass the gate even under saturation.
    let pong = c.call("{\"cmd\":\"ping\"}").unwrap();
    assert_eq!(classify(&pong).0, "ok");
    // Work commands are shed.
    let mut shed = 0;
    for i in 0..20 {
        let resp = c
            .call(&solve_line(&format!("q{i}"), &read_circuit("example1.ckt")))
            .unwrap();
        let (status, kind) = classify(&resp);
        if status == "error" && kind == "overload" {
            shed += 1;
        }
    }
    assert!(shed > 0, "a saturated 1-slot server must shed work");

    let slow_resp = slow.join().unwrap();
    assert_eq!(classify(&slow_resp).0, "ok");
    server.shutdown();
    server.wait();
}

#[test]
fn graceful_drain_finishes_inflight_work() {
    let server = start_server(2, 2);
    let addr = server.addr().to_string();

    let mut a = Client::connect(&addr).unwrap();
    let resp = a
        .call(&solve_line("before", &read_circuit("alu_bypass.ckt")))
        .unwrap();
    assert_eq!(classify(&resp).0, "ok");

    // Shutdown via the wire command; the same connection gets the ack.
    let ack = a.call("{\"id\":\"bye\",\"cmd\":\"shutdown\"}").unwrap();
    let v = Json::parse(&ack).unwrap();
    assert_eq!(
        v.get("result")
            .and_then(|r| r.get("draining"))
            .and_then(Json::as_bool),
        Some(true)
    );
    server.wait(); // must return: no wedged threads, no abandoned work
}
