//! Property-based and differential tests for the difference-constraint
//! fast path: the graph backend must agree with the certified simplex on
//! every circuit it accepts, its negative-cycle certificates must be
//! infeasible *in isolation* (not merely as part of the full model), and
//! the exact min-cycle-ratio optimum must land inside the combinatorial
//! `cycle_time_bounds` bracket.

mod common;

use proptest::prelude::*;
use smo::circuit::Circuit;
use smo::gen::paper::{appendix_fig1, example1, example2, gaas_mips};
use smo::gen::random::{random_circuit, GenConfig};
use smo::lp::{
    certifies_infeasibility, classify, DifferenceSystem, LinExpr, MinParamOutcome, Problem,
    SolveBudget, Status, Tol,
};
use smo::timing::{
    classify_model, cycle_time_bounds, min_cycle_time_with, variable_images, Backend,
    ConstraintOptions, MlpOptions, TimingModel,
};

/// Solves `circuit` on the requested backend, returning `None` when the
/// backend refuses the model (graph mode on a mixed model).
fn solve_on(circuit: &Circuit, backend: Backend) -> Option<f64> {
    min_cycle_time_with(
        circuit,
        &MlpOptions {
            backend,
            ..Default::default()
        },
    )
    .ok()
    .map(|s| s.cycle_time())
}

/// Rebuilds a standalone LP containing *only* the certificate's rows
/// (same variables, same bounds, same senses) and returns it together
/// with the certificate's multipliers re-indexed to the new row order.
fn isolate_rows(p: &Problem, rows: &[(smo::lp::ConstraintId, f64)]) -> (Problem, Vec<f64>) {
    // Recreate every variable in index order so `VarId`s carry over.
    let mut names: Vec<(String, f64, f64)> = Vec::new();
    for i in 0..p.num_vars() {
        // Find the VarId with this index by scanning the certificate rows'
        // expressions plus the objective; any var not mentioned anywhere
        // still needs a slot, so fall back to a fresh bounded var.
        names.push((format!("x{i}"), f64::NEG_INFINITY, f64::INFINITY));
    }
    for &(row, _) in rows {
        let (expr, _, _) = p.constraint(row);
        for (v, _) in expr.iter() {
            let (lo, up) = p.var_bounds(v);
            names[v.index()] = (p.var_name(v).to_string(), lo, up);
        }
    }
    let mut q = Problem::new();
    let mut obj = LinExpr::new();
    // Adding in index order means `ids[i]` is the rebuilt problem's
    // variable with index `i`, letting old expressions be re-targeted.
    let ids: Vec<smo::lp::VarId> = names
        .iter()
        .map(|(name, lo, up)| {
            if lo.is_finite() || up.is_finite() {
                q.add_var_bounded(name.clone(), *lo, *up)
            } else {
                q.add_free_var(name.clone())
            }
        })
        .collect();
    obj.add_term(ids[0], 0.0);
    let mut farkas = Vec::with_capacity(rows.len());
    for &(row, m) in rows {
        let (expr, sense, rhs) = p.constraint(row);
        let mut e = LinExpr::new();
        for (v, c) in expr.iter() {
            e.add_term(ids[v.index()], c);
        }
        q.constrain(e, sense, rhs);
        farkas.push(m);
    }
    q.minimize(obj);
    (q, farkas)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Graph backend vs the certified simplex: identical verdicts and
    /// objectives (within `Tol::TIGHT`) on random latch-only circuits.
    #[test]
    fn prop_graph_agrees_with_certified_lp(seed in 0u64..10_000, latches in 3usize..12) {
        let cfg = GenConfig {
            latches,
            edges: 2 * latches,
            flip_flop_prob: 0.0,
            ..Default::default()
        };
        let circuit = random_circuit(&cfg, seed);
        let lp = solve_on(&circuit, Backend::Lp).expect("LP solves generated circuits");
        let graph = solve_on(&circuit, Backend::Graph)
            .expect("default latch models are pure difference systems");
        prop_assert!(
            (graph - lp).abs() <= Tol::TIGHT.abs_for(lp),
            "graph Tc* = {graph} but certified LP found {lp}"
        );
    }

    /// Same agreement with flip-flops mixed in (FF rows are differences
    /// too, so the model stays pure and the graph backend still applies).
    #[test]
    fn prop_graph_agrees_with_ff_circuits(seed in 0u64..10_000) {
        let cfg = GenConfig {
            latches: 8,
            edges: 16,
            flip_flop_prob: 0.4,
            ..Default::default()
        };
        let circuit = random_circuit(&cfg, seed);
        let lp = solve_on(&circuit, Backend::Lp).expect("LP solves generated circuits");
        if let Some(graph) = solve_on(&circuit, Backend::Graph) {
            prop_assert!(
                (graph - lp).abs() <= Tol::TIGHT.abs_for(lp),
                "graph Tc* = {graph} but certified LP found {lp}"
            );
        }
    }

    /// The graph optimum always lands inside the combinatorial bracket
    /// `lower ≤ Tc* ≤ upper` certified by `cycle_time_bounds`.
    #[test]
    fn prop_graph_optimum_within_combinatorial_bracket(seed in 0u64..10_000) {
        let cfg = GenConfig {
            latches: 6,
            edges: 12,
            flip_flop_prob: 0.0,
            ..Default::default()
        };
        let circuit = random_circuit(&cfg, seed);
        let bounds = cycle_time_bounds(&circuit);
        let graph = solve_on(&circuit, Backend::Graph).expect("pure model");
        prop_assert!(
            bounds.lower - 1e-7 * (1.0 + graph) <= graph
                && graph <= bounds.upper + 1e-7 * (1.0 + graph),
            "Tc* = {graph} outside certified bracket [{}, {}]",
            bounds.lower,
            bounds.upper
        );
    }

    /// Every negative-cycle certificate is a genuine Farkas proof — and
    /// the flagged rows are infeasible *in isolation*: an LP containing
    /// only those rows (same variables and bounds) has no feasible point.
    #[test]
    fn prop_negative_cycle_certs_are_infeasible_in_isolation(seed in 0u64..10_000) {
        let cfg = GenConfig {
            latches: 5,
            edges: 10,
            flip_flop_prob: 0.0,
            ..Default::default()
        };
        let circuit = random_circuit(&cfg, seed);
        let bounds = cycle_time_bounds(&circuit);
        prop_assume!(bounds.lower > 1e-6);
        // Cap the cycle time strictly below the certified lower bound:
        // the difference system must now contain a negative cycle.
        let options = ConstraintOptions {
            max_cycle: Some(bounds.lower * 0.5),
            ..Default::default()
        };
        let model = TimingModel::build_with(&circuit, &options).expect("model");
        let images = variable_images(&circuit, &model);
        let cls = classify(model.problem(), &images).expect("classifies");
        prop_assume!(cls.is_pure());
        let system = DifferenceSystem::build(model.problem(), &images, &cls).expect("builds");
        let cert = match system.minimize_param(&SolveBudget::UNLIMITED).expect("search runs") {
            MinParamOutcome::Infeasible(cert) => cert,
            MinParamOutcome::Optimal { lambda, .. } =>
                return Err(TestCaseError::fail(format!(
                    "cap {} below certified lower bound {} still solved at {lambda}",
                    bounds.lower * 0.5,
                    bounds.lower
                ))),
        };
        // (a) The certificate condemns the full model.
        prop_assert!(cert.check(model.problem()), "full-model Farkas check failed");
        prop_assert!(
            certifies_infeasibility(model.problem(), cert.farkas()),
            "Farkas vector rejected by the independent checker"
        );
        // (b) The flagged rows alone are already infeasible.
        let (isolated, farkas) = isolate_rows(model.problem(), cert.rows());
        prop_assert!(
            certifies_infeasibility(&isolated, &farkas),
            "certificate rows are not infeasible in isolation"
        );
        let status = isolated.solve().expect("isolated LP solves").status();
        prop_assert_eq!(status, Status::Infeasible, "simplex disagrees on the isolated rows");
    }
}

/// Graph-vs-LP differential over the paper's shipped circuits plus a
/// deterministic batch of 120 random ones — the "100+ circuits" sweep
/// pinned down without proptest's shrinking overhead.
#[test]
fn graph_and_lp_agree_on_shipped_and_batch_circuits() {
    let mut circuits: Vec<Circuit> = vec![
        example1(80.0),
        example1(0.0),
        example2(),
        gaas_mips(),
        appendix_fig1(30.0, 2.0, 4.0),
    ];
    for seed in 0..60 {
        circuits.push(random_circuit(
            &GenConfig {
                flip_flop_prob: 0.0,
                ..Default::default()
            },
            seed,
        ));
        circuits.push(random_circuit(
            &GenConfig {
                latches: 10,
                edges: 20,
                phases: 3,
                flip_flop_prob: 0.25,
                ..Default::default()
            },
            1000 + seed,
        ));
    }
    let mut graph_solved = 0usize;
    for (i, circuit) in circuits.iter().enumerate() {
        let lp = solve_on(circuit, Backend::Lp).expect("LP solves every batch circuit");
        let auto = solve_on(circuit, Backend::Auto).expect("auto solves every batch circuit");
        assert!(
            (auto - lp).abs() <= Tol::TIGHT.abs_for(lp),
            "circuit {i}: auto Tc* = {auto} but LP found {lp}"
        );
        if let Some(graph) = solve_on(circuit, Backend::Graph) {
            graph_solved += 1;
            assert!(
                (graph - lp).abs() <= Tol::TIGHT.abs_for(lp),
                "circuit {i}: graph Tc* = {graph} but LP found {lp}"
            );
        }
    }
    // The fast path must actually cover the batch, not silently bail.
    assert!(
        graph_solved >= circuits.len() - 5,
        "graph backend only accepted {graph_solved}/{} circuits",
        circuits.len()
    );
}

/// The paper's Example 1 closed form: `Tc* = 110` at `Δ41 = 80` — the
/// graph backend reproduces it exactly (min-cycle-ratio is not iterative
/// refinement; the optimum is combinatorial).
#[test]
fn graph_backend_reproduces_example1_closed_form() {
    let circuit = example1(80.0);
    let sol = min_cycle_time_with(
        &circuit,
        &MlpOptions {
            backend: Backend::Graph,
            ..Default::default()
        },
    )
    .expect("example1 is a pure difference system");
    assert!(
        (sol.cycle_time() - 110.0).abs() < 1e-9,
        "graph Tc* = {}",
        sol.cycle_time()
    );
    assert!(
        sol.certified(),
        "graph solution must carry a valid certificate"
    );
    assert_eq!(sol.lp_iterations(), 0, "no simplex pivots on the fast path");
    let bounds = cycle_time_bounds(&circuit);
    assert!(bounds.lower <= 110.0 + 1e-9 && 110.0 <= bounds.upper + 1e-9);
}

/// Classifier coverage: the default model of every shipped circuit is a
/// pure difference system (this is what makes the fast path the common
/// case, per DESIGN.md).
#[test]
fn shipped_circuits_classify_as_pure_difference_systems() {
    for (name, circuit) in [
        ("example1", example1(80.0)),
        ("example2", example2()),
        ("gaas_mips", gaas_mips()),
        ("appendix_fig1", appendix_fig1(30.0, 2.0, 4.0)),
    ] {
        let model = TimingModel::build(&circuit).expect("model");
        let cls = classify_model(&circuit, &model).expect("classifies");
        assert!(cls.is_pure(), "{name}: {} general rows", cls.num_general());
        assert_eq!(
            cls.len(),
            model.num_constraints(),
            "{name}: classification is total"
        );
    }
}

/// Satellite of the serve PR: `SolveBudget::deadline` must be consulted by
/// the graph backend too, so `--time-limit` holds on *every* backend. An
/// already-expired deadline returns a structured `LpError::Budget` — never
/// a partial or unbudgeted result — on graph, auto and lp routes alike,
/// certified or not.
#[test]
fn expired_deadline_is_a_budget_error_on_every_backend() {
    let circuit = gaas_mips();
    for backend in [Backend::Graph, Backend::Auto, Backend::Lp] {
        for certify in [true, false] {
            let options = MlpOptions {
                backend,
                certify,
                time_limit: Some(std::time::Duration::ZERO),
                ..Default::default()
            };
            match min_cycle_time_with(&circuit, &options) {
                Err(smo::timing::TimingError::Lp(smo::lp::LpError::Budget {
                    timed_out, ..
                })) => {
                    assert!(timed_out, "{backend}/certify={certify}: expired by time");
                }
                other => {
                    panic!("{backend}/certify={certify}: expected LpError::Budget, got {other:?}")
                }
            }
        }
    }
}
