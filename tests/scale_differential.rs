//! Scale-differential suite: the sparse-LU simplex variant must agree
//! with the dense tableau and the dense-inverse revised simplex on every
//! circuit we can throw at it — the shipped netlists, the pathological
//! stress suite, proptest-random circuits, and generated pipelined
//! datapaths at 1k and 5k constraint rows.
//!
//! "Agree" is strict: identical verdicts, objectives within
//! [`Tol::TIGHT`], and every optimal verdict carrying a valid
//! independently-checked certificate (`solve_certified` refuses to return
//! an uncertified optimum, and we re-check the certificate here anyway).
//!
//! The two large generated sizes are `#[ignore]`d so `cargo test` stays
//! fast in debug builds; `ci.sh` runs them in release mode.

mod common;

use std::time::Duration;

use common::{load_circuit, SHIPPED_NETLISTS};
use proptest::prelude::*;
use smo::circuit::Circuit;
use smo::gen::datapath::{pipelined_datapath, DatapathConfig};
use smo::gen::random::{random_circuit, GenConfig};
use smo::gen::stress;
use smo::lp::{LpError, RecoveryPolicy, SimplexVariant, SolveBudget, Status, Tol};
use smo::timing::TimingModel;

const VARIANTS: [SimplexVariant; 3] = [
    SimplexVariant::Dense,
    SimplexVariant::Revised,
    SimplexVariant::SparseLu,
];

/// Solves `circuit`'s cycle-time LP certified under every variant and
/// asserts the verdicts agree; returns the shared verdict.
fn assert_variants_agree(name: &str, circuit: &Circuit, budget: SolveBudget) -> Status {
    let model = TimingModel::build(circuit).unwrap_or_else(|e| panic!("{name}: model: {e}"));
    let mut reference: Option<(SimplexVariant, Status, Option<f64>)> = None;
    for variant in VARIANTS {
        let policy = RecoveryPolicy {
            variant,
            budget,
            ..Default::default()
        };
        let certified = model
            .problem()
            .solve_certified(&policy)
            .unwrap_or_else(|e| panic!("{name}: {variant:?} certified solve: {e}"));
        if certified.status() == Status::Optimal {
            let cert = certified
                .certificate()
                .unwrap_or_else(|| panic!("{name}: {variant:?} optimal without certificate"));
            assert!(
                cert.is_valid(),
                "{name}: {variant:?} certificate invalid: {cert}"
            );
        }
        let objective = certified.solution().objective();
        match &reference {
            None => reference = Some((variant, certified.status(), objective)),
            Some((ref_variant, ref_status, ref_objective)) => {
                assert_eq!(
                    certified.status(),
                    *ref_status,
                    "{name}: {variant:?} verdict differs from {ref_variant:?}"
                );
                if let (Some(a), Some(b)) = (objective, *ref_objective) {
                    assert!(
                        Tol::TIGHT.is_zero(a - b, b.abs().max(1.0)),
                        "{name}: {variant:?} objective {a} vs {ref_variant:?} {b}"
                    );
                }
            }
        }
    }
    reference.map(|(_, s, _)| s).unwrap_or(Status::Optimal)
}

#[test]
fn shipped_netlists_agree_across_all_variants() {
    for path in SHIPPED_NETLISTS {
        let circuit = load_circuit(path);
        let status = assert_variants_agree(path, &circuit, SolveBudget::UNLIMITED);
        assert_eq!(status, Status::Optimal, "{path}: shipped circuits solve");
    }
}

#[test]
fn stress_suite_agrees_across_all_variants() {
    for seed in 0..3u64 {
        for (name, circuit) in stress::suite(seed) {
            let label = format!("{name} (seed {seed})");
            let status = assert_variants_agree(&label, &circuit, SolveBudget::UNLIMITED);
            assert_eq!(status, Status::Optimal, "{label}: stress circuits solve");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random circuits — including infeasible ones — get the same verdict
    /// from all three variants.
    #[test]
    fn prop_random_circuits_agree(seed in 0u64..10_000) {
        let cfg = GenConfig {
            phases: 2 + (seed as usize % 3),
            latches: 6 + (seed as usize % 30),
            edges: 8 + (seed as usize % 50),
            flip_flop_prob: 0.1,
            ..Default::default()
        };
        let circuit = random_circuit(&cfg, seed);
        assert_variants_agree(&format!("random seed {seed}"), &circuit, SolveBudget::UNLIMITED);
    }
}

/// ~1 000 constraint rows: all three variants must finish and agree under
/// one shared wall-clock budget. Run by `ci.sh` in release mode.
#[test]
#[ignore = "release-mode scale test; run via ci.sh or --ignored"]
fn generated_1k_rows_agree_under_time_budget() {
    let circuit = pipelined_datapath(&DatapathConfig::with_latches(330), 11);
    let model = TimingModel::build(&circuit).expect("model builds");
    assert!(
        model.num_constraints() >= 1_000,
        "generator target drifted: {} rows",
        model.num_constraints()
    );
    let budget = SolveBudget::with_time_limit(Duration::from_secs(300));
    let status = assert_variants_agree("datapath 1k rows", &circuit, budget);
    assert_eq!(status, Status::Optimal);
}

/// ~5 000 constraint rows: the sparse-LU variant must certify an optimum
/// within the budget; dense and revised either agree or hit the deadline
/// honestly (`LpError::Budget`) — at this size the dense tableau is
/// expected to time out, which is the point of the sparse path.
#[test]
#[ignore = "release-mode scale test; run via ci.sh or --ignored"]
fn generated_5k_rows_sparse_certifies_under_time_budget() {
    let circuit = pipelined_datapath(&DatapathConfig::with_latches(1_667), 11);
    let model = TimingModel::build(&circuit).expect("model builds");
    assert!(
        model.num_constraints() >= 5_000,
        "generator target drifted: {} rows",
        model.num_constraints()
    );
    let sparse_budget = SolveBudget::with_time_limit(Duration::from_secs(120));
    let sparse = model
        .problem()
        .solve_certified(&RecoveryPolicy {
            variant: SimplexVariant::SparseLu,
            budget: sparse_budget,
            ..Default::default()
        })
        .expect("sparse-LU certifies 5k rows inside the budget");
    assert_eq!(sparse.status(), Status::Optimal);
    let tc = sparse.solution().objective().expect("optimal objective");

    // Dense and revised get a shorter leash: at this size they are
    // expected to hit the deadline (that is the point of the sparse
    // path), so the budget mostly bounds CI time.
    let budget = SolveBudget::with_time_limit(Duration::from_secs(45));
    for variant in [SimplexVariant::Dense, SimplexVariant::Revised] {
        match model.problem().solve_certified(&RecoveryPolicy {
            variant,
            budget,
            ..Default::default()
        }) {
            Ok(certified) => {
                assert_eq!(certified.status(), Status::Optimal, "{variant:?}");
                let other = certified.solution().objective().expect("optimal objective");
                assert!(
                    Tol::TIGHT.is_zero(other - tc, tc),
                    "{variant:?} Tc {other} vs sparse {tc}"
                );
            }
            Err(LpError::Budget { timed_out, .. }) => {
                assert!(timed_out, "{variant:?} exhausted iterations, not time");
            }
            Err(e) => panic!("{variant:?}: unexpected failure: {e}"),
        }
    }
}
