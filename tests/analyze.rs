//! Integration tests for the static-analysis layer: `lint` and `analyze`
//! over the shipped netlists, presolve soundness against the plain solve,
//! infeasibility diagnosis on over-constrained variants of the paper's
//! examples, and property tests of IIS minimality.

use proptest::prelude::*;
use smo::analyze::{analyze, diagnose, lint, Diagnosis, Rule, Severity};
use smo::circuit::netlist;
use smo::gen::paper;
use smo::gen::random::{random_circuit, GenConfig};
use smo::lp::{certifies_infeasibility, extract_iis, PresolveOptions, SimplexVariant, Status};
use smo::timing::{cycle_time_bounds, ConstraintKind, ConstraintOptions, TimingModel};
use std::path::Path;

const SHIPPED: [&str; 5] = [
    "circuits/example1.ckt",
    "circuits/example2.ckt",
    "circuits/gaas_mips.ckt",
    "circuits/appendix_fig1.ckt",
    "circuits/alu_bypass.ckt",
];

/// Loads a shipped netlist, auto-detecting the gate-level dialect (same
/// logic as the CLI).
fn load(rel: &str) -> smo::circuit::Circuit {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {rel}: {e}"));
    let gate_level = src.lines().any(|l| {
        let t = l.split('#').next().unwrap_or("").trim_start();
        t.starts_with("gate ") || t.starts_with("wire ")
    });
    if gate_level {
        netlist::parse_gates(&src).expect("shipped gate netlist parses")
    } else {
        netlist::parse(&src).expect("shipped netlist parses")
    }
}

#[test]
fn lint_is_clean_on_all_shipped_circuits() {
    for f in SHIPPED {
        let report = lint(&load(f));
        assert!(report.is_clean(), "{f} should lint clean but:\n{report}");
    }
}

#[test]
fn analyze_brackets_every_shipped_circuit() {
    for f in SHIPPED {
        let circuit = load(f);
        let r = analyze(&circuit).unwrap_or_else(|e| panic!("{f}: {e}"));
        assert!(
            r.bounds.lower <= r.optimum + 1e-9 && r.optimum <= r.bounds.upper + 1e-9,
            "{f}: optimum {} outside [{}, {}]",
            r.optimum,
            r.bounds.lower,
            r.bounds.upper
        );
        assert!(r.bounds.brackets(r.optimum), "{f}");
    }
}

#[test]
fn analyze_lower_bound_is_exact_on_example1() {
    let r = analyze(&load("circuits/example1.ckt")).unwrap();
    assert_eq!(r.bounds.lower, r.optimum, "critical loop sets the clock");
    assert_eq!(r.optimum, 110.0);
    assert!(r.lower_is_tight);
}

#[test]
fn presolve_removes_rows_on_at_least_one_shipped_circuit() {
    // gaas_mips has flip-flops (their `D = 0` rows are equality singletons)
    // and same-phase paths (whose C3 self-pair rows duplicate C1 widths).
    let total: usize = SHIPPED
        .iter()
        .map(|f| analyze(&load(f)).unwrap().rows_removed())
        .sum();
    assert!(total >= 1, "presolve removed nothing across all circuits");
    let mips = analyze(&load("circuits/gaas_mips.ckt")).unwrap();
    assert!(mips.rows_removed() >= 1, "stats: {}", mips.presolve);
    let ff = mips
        .removed_by_family
        .iter()
        .find(|(f, _)| *f == "FF departure")
        .expect("family breakdown present");
    assert!(ff.1 >= 1, "FF departure singletons should fold");
}

#[test]
fn presolved_and_plain_solves_agree_on_shipped_circuits() {
    // When presolve removes nothing the reduced problem *is* the original,
    // so the two paths are bit-identical by construction. When rows are
    // removed the smaller simplex takes a different arithmetic path to the
    // same vertex, so agreement is to the last ulp or two (on gaas_mips the
    // presolved path returns the exact 4.4 while the plain dense solve
    // carries one ulp of rounding).
    for f in SHIPPED {
        let circuit = load(f);
        let model = TimingModel::build(&circuit).unwrap();
        let plain = model.solve_lp().unwrap().objective();
        let reductions = model
            .problem()
            .presolve(&PresolveOptions::default())
            .stats()
            .rows_removed();
        for variant in [SimplexVariant::Dense, SimplexVariant::Revised] {
            let pre = model
                .problem()
                .solve_with_presolve(variant, &PresolveOptions::default())
                .unwrap()
                .objective()
                .expect("optimal");
            if reductions == 0 && variant == SimplexVariant::Dense {
                assert_eq!(pre, plain, "{f}: no-op presolve must be bit-identical");
            } else {
                assert!(
                    (pre - plain).abs() <= 2.0 * f64::EPSILON * (1.0 + plain.abs()),
                    "{f} with {variant:?}: presolved {pre} vs plain {plain}"
                );
            }
        }
    }
}

#[test]
fn presolve_path_preserves_the_infeasibility_diagnosis() {
    // Over-constrained Example 1 (Tc ≤ 100 < 110): the presolve entry
    // point must surface the same Farkas certificate and the same IIS as
    // the plain solve, referencing original row ids.
    let circuit = paper::example1(80.0);
    let opts = ConstraintOptions {
        max_cycle: Some(100.0),
        ..Default::default()
    };
    let model = TimingModel::build_with(&circuit, &opts).unwrap();
    let p = model.problem();

    let plain = p.solve().unwrap();
    let pre = p
        .solve_with_presolve(SimplexVariant::Dense, &PresolveOptions::default())
        .unwrap();
    assert_eq!(plain.status(), Status::Infeasible);
    assert_eq!(pre.status(), Status::Infeasible);
    let y = pre.farkas().expect("infeasible solves carry a certificate");
    assert!(certifies_infeasibility(p, y));
    assert_eq!(plain.farkas(), pre.farkas(), "certificates must agree");

    let iis = extract_iis(p).unwrap().expect("model is infeasible");
    let d = diagnose(&circuit, Some(100.0)).unwrap();
    let report = d.report().expect("infeasible");
    let mut from_iis = iis.rows().to_vec();
    let mut from_diagnose = report.rows();
    from_iis.sort_by_key(|c| c.index());
    from_diagnose.sort_by_key(|c| c.index());
    assert_eq!(from_iis, from_diagnose, "IIS must match the diagnosis");
}

#[test]
fn combinatorial_bounds_bracket_the_shipped_optima() {
    for f in SHIPPED {
        let circuit = load(f);
        let bounds = cycle_time_bounds(&circuit);
        let tc = TimingModel::build(&circuit)
            .unwrap()
            .solve_lp()
            .unwrap()
            .objective();
        assert!(
            bounds.brackets(tc),
            "{f}: Tc {} outside [{}, {}]",
            tc,
            bounds.lower,
            bounds.upper
        );
    }
}

#[test]
fn lint_flags_seeded_bad_netlist() {
    // One netlist seeded with four distinct mistakes: an orphan latch, a
    // dead phase (φ3), a duplicated path line, and a zero-delay loop of
    // transparent latches.
    let src = "\
clock 3
latch L1 phase=1 setup=1 dq=2
latch L2 phase=2 setup=1 dq=2
latch orphan phase=1 setup=1 dq=2
latch X phase=1 setup=0 dq=0
latch Y phase=2 setup=0 dq=0
path L1 L2 delay=5
path L1 L2 delay=7
path L2 L1 delay=5
path X Y delay=0
path Y X delay=0
";
    let report = lint(&netlist::parse(src).unwrap());
    assert!(report.has_errors());
    assert_eq!(report.worst(), Some(Severity::Error));
    let fired: Vec<Rule> = report.findings.iter().map(|f| f.rule).collect();
    for rule in [
        Rule::UnconstrainedSync,
        Rule::DeadPhase,
        Rule::DuplicateEdge,
        Rule::ZeroDelayLoop,
    ] {
        assert!(fired.contains(&rule), "{rule} did not fire:\n{report}");
    }
    let text = report.to_string();
    assert!(text.contains("orphan"));
    assert!(text.contains("φ3"));
}

#[test]
fn overconstrained_example1_names_paper_constraints() {
    // Example 1 at Δ41 = 80 has optimum Tc = 110; demanding Tc ≤ 100 is
    // impossible, and the conflict is exactly the critical loop
    // L1→L2→L3→L4→L1 (four L2R rows) against the cap.
    let circuit = paper::example1(80.0);
    let d = diagnose(&circuit, Some(100.0)).unwrap();
    let report = d.report().expect("Tc ≤ 100 < 110 must be infeasible");
    assert!(report.certified, "Farkas certificate must re-verify");
    assert!(report.involves(ConstraintKind::CycleBound));
    assert!(report.involves(ConstraintKind::Propagation));

    let text = d.to_string();
    assert!(text.contains("no feasible clock schedule at cycle time 100"));
    assert!(
        text.contains("L2R (eq. 19)"),
        "missing paper label:\n{text}"
    );
    assert!(text.contains("`L4`") && text.contains("`L1`"));
    assert!(text.contains("φ1") && text.contains("φ2"));
    assert!(text.contains("cycle time capped at 100"));

    // The reported IIS is verified minimal against a fresh model: it is
    // infeasible in isolation and every single-member removal is feasible.
    let opts = ConstraintOptions {
        max_cycle: Some(100.0),
        ..Default::default()
    };
    let model = TimingModel::build_with(&circuit, &opts).unwrap();
    let rows = report.rows();
    assert_eq!(
        model.problem().restricted(&rows).solve().unwrap().status(),
        Status::Infeasible
    );
    for i in 0..rows.len() {
        let mut rest = rows.clone();
        rest.remove(i);
        assert_ne!(
            model.problem().restricted(&rest).solve().unwrap().status(),
            Status::Infeasible,
            "IIS member {i} is redundant"
        );
    }
}

#[test]
fn overconstrained_example2_reports_certified_conflict() {
    let circuit = paper::example2();
    let free = match diagnose(&circuit, None).unwrap() {
        Diagnosis::Feasible { min_cycle } => min_cycle,
        Diagnosis::Infeasible(_) => panic!("plain SMO model must be feasible"),
    };
    let cap = 0.8 * free;
    let d = diagnose(&circuit, Some(cap)).unwrap();
    let report = d.report().expect("80% of the optimum is infeasible");
    assert!(report.certified);
    assert!(report.involves(ConstraintKind::CycleBound));
    assert!(report.constraints.len() >= 2, "a cap alone is never an IIS");
    let json = d.to_json();
    assert!(json.contains("\"feasible\": false"));
    assert!(json.contains("\"certified\": true"));
    assert!(json.contains("\"iis\": ["));
}

#[test]
fn achievable_targets_stay_feasible() {
    let circuit = paper::example1(80.0);
    match diagnose(&circuit, Some(110.0)).unwrap() {
        Diagnosis::Feasible { min_cycle } => assert!((min_cycle - 110.0).abs() < 1e-6),
        Diagnosis::Infeasible(r) => panic!("Tc ≤ 110 is exactly achievable:\n{r}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For randomly generated circuits made infeasible by an impossible
    /// cycle-time cap, the extracted IIS is (a) infeasible re-solved in
    /// isolation and (b) minimal: removing any one member makes the
    /// remaining subsystem feasible. The solver's Farkas certificate also
    /// re-verifies independently.
    #[test]
    fn prop_iis_is_minimal_and_infeasible(
        phases in 1usize..=4,
        latches in 2usize..=7,
        edges in 3usize..=12,
        seed in 0u64..1000,
    ) {
        let cfg = GenConfig { phases, latches, edges, ..Default::default() };
        let circuit = random_circuit(&cfg, seed);
        let free = TimingModel::build(&circuit)
            .expect("model builds")
            .solve_lp()
            .expect("plain SMO model is feasible")
            .objective();
        prop_assume!(free > 1e-6);

        let opts = ConstraintOptions { max_cycle: Some(0.8 * free), ..Default::default() };
        let model = TimingModel::build_with(&circuit, &opts).expect("model builds");
        let p = model.problem();

        let sol = p.solve().expect("solver runs");
        prop_assert_eq!(sol.status(), Status::Infeasible);
        let y = sol.farkas().expect("infeasible solves carry a certificate");
        prop_assert!(certifies_infeasibility(p, y), "certificate fails to verify");

        let iis = extract_iis(p).expect("solver runs").expect("model is infeasible");
        let rows = iis.rows().to_vec();
        prop_assert!(!rows.is_empty());

        // (a) infeasible in isolation.
        prop_assert_eq!(
            p.restricted(&rows).solve().expect("solver runs").status(),
            Status::Infeasible
        );
        // (b) minimal: every single-member removal is feasible.
        for i in 0..rows.len() {
            let mut rest = rows.clone();
            rest.remove(i);
            prop_assert!(
                p.restricted(&rest).solve().expect("solver runs").status() != Status::Infeasible,
                "IIS member {} of {} is redundant", i, rows.len()
            );
        }
    }
}
