//! Shared helpers for the integration-test suites.
//!
//! The solve helpers here are deliberately *differential*: whenever a
//! caller hands them a basis snapshot, the model is solved cold **and**
//! warm (every simplex variant) and the verdicts are asserted to agree
//! within [`Tol::TIGHT`]. Every suite that routes its re-solve loops
//! through this module therefore doubles as a warm-start regression test.
#![allow(dead_code)]

use smo::circuit::Circuit;
use smo::lp::{Basis, Problem, SimplexVariant, Solution, Status, Tol};
use smo::timing::TimingModel;

/// Solves `p` cold; with a snapshot, also re-solves warm from it with every
/// simplex variant and asserts status and objective agree with the cold
/// verdict. Returns the cold solution.
pub fn solve_checked(p: &Problem, warm_from: Option<&Basis>) -> Solution {
    let cold = p.solve().expect("cold solve runs");
    if let Some(basis) = warm_from {
        for variant in [
            SimplexVariant::Dense,
            SimplexVariant::Revised,
            SimplexVariant::SparseLu,
        ] {
            let warm = p
                .solve_from_basis_with(variant, basis)
                .expect("warm solve runs");
            assert_eq!(
                warm.status(),
                cold.status(),
                "{variant:?}: warm and cold disagree on status"
            );
            if cold.status() == Status::Optimal {
                let (w, c) = (warm.objective().unwrap(), cold.objective().unwrap());
                assert!(
                    Tol::TIGHT.is_zero(w - c, c),
                    "{variant:?}: warm objective {w} vs cold {c}"
                );
                assert!(
                    warm.certify(p).is_valid(),
                    "{variant:?}: warm optimum fails certification: {}",
                    warm.certify(p)
                );
            }
            if cold.status() == Status::Infeasible {
                // A repaired basis must never smuggle in an uncertified
                // verdict: infeasibility always arrives Farkas-backed.
                let y = warm.farkas().expect("warm infeasible carries Farkas");
                assert!(smo::lp::certifies_infeasibility(p, y));
            }
        }
    }
    cold
}

/// LP-level minimum cycle time of `circuit`, solved cold; with a snapshot,
/// also solved warm from it (every variant, objectives asserted equal).
/// Returns the cycle time and the cold solve's own basis for chaining.
pub fn min_tc_checked(circuit: &Circuit, warm_from: Option<&Basis>) -> (f64, Basis) {
    let model = TimingModel::build(circuit).expect("model builds");
    let cold = model.solve_lp().expect("plain SMO models are feasible");
    let tc = cold.objective();
    if let Some(basis) = warm_from {
        for variant in [
            SimplexVariant::Dense,
            SimplexVariant::Revised,
            SimplexVariant::SparseLu,
        ] {
            let warm = model
                .solve_lp_from_basis(variant, basis)
                .expect("warm solve runs");
            let w = warm.objective();
            assert!(
                Tol::TIGHT.is_zero(w - tc, tc),
                "{variant:?}: warm Tc {w} vs cold {tc}"
            );
        }
    }
    let basis = cold
        .basis()
        .cloned()
        .expect("optimal solve captures a basis");
    (tc, basis)
}

/// Loads a shipped netlist (relative to the repository root),
/// auto-detecting the gate-level dialect like the `smo` binary does.
pub fn load_circuit(path: &str) -> Circuit {
    let full = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(path);
    let src = std::fs::read_to_string(&full).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let gate_level = src.lines().any(|l| {
        let t = l.split('#').next().unwrap_or("").trim_start();
        t.starts_with("gate ") || t.starts_with("wire ")
    });
    if gate_level {
        smo::circuit::netlist::parse_gates(&src)
    } else {
        smo::circuit::netlist::parse(&src)
    }
    .unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

/// The netlists shipped in `circuits/`.
pub const SHIPPED_NETLISTS: [&str; 5] = [
    "circuits/example1.ckt",
    "circuits/example2.ckt",
    "circuits/gaas_mips.ckt",
    "circuits/appendix_fig1.ckt",
    "circuits/alu_bypass.ckt",
];
