//! Pathological-circuit stress harness: every circuit in the
//! [`smo::gen::stress`] suite must solve without panicking under **both**
//! simplex variants, the two variants must agree on the optimal cycle
//! time, and every verdict must carry a valid independent optimality
//! certificate.

use smo::gen::stress;
use smo::lp::SimplexVariant;
use smo::prelude::*;
use smo::timing::{min_cycle_time_with, MlpOptions};

fn certified_tc(circuit: &Circuit, variant: SimplexVariant) -> (f64, usize) {
    let options = MlpOptions {
        simplex: variant,
        certify: true,
        ..Default::default()
    };
    let solution = min_cycle_time_with(circuit, &options).expect("pathological circuit solves");
    assert!(
        solution.certified(),
        "{variant:?} solve did not certify: {:?}",
        solution.certificates()
    );
    (solution.cycle_time(), solution.certificates().len())
}

#[test]
fn stress_suite_certifies_under_both_variants() {
    for seed in 0..4u64 {
        for (name, circuit) in stress::suite(seed) {
            let (dense, n_dense) = certified_tc(&circuit, SimplexVariant::Dense);
            let (revised, n_revised) = certified_tc(&circuit, SimplexVariant::Revised);
            assert!(
                (dense - revised).abs() <= 1e-6 * (1.0 + dense.abs()),
                "{name} (seed {seed}): dense Tc = {dense}, revised Tc = {revised}"
            );
            assert!(
                n_dense >= 1 && n_revised >= 1,
                "{name}: missing certificates"
            );
            assert!(
                dense.is_finite() && dense > 0.0,
                "{name}: nonsensical Tc = {dense}"
            );
        }
    }
}

#[test]
fn badly_scaled_certifies_across_fifteen_orders_of_magnitude() {
    for seed in 0..6u64 {
        let circuit = stress::badly_scaled(15, 3, seed);
        let (dense, _) = certified_tc(&circuit, SimplexVariant::Dense);
        let (revised, _) = certified_tc(&circuit, SimplexVariant::Revised);
        assert!(
            (dense - revised).abs() <= 1e-6 * (1.0 + dense.abs()),
            "seed {seed}: dense {dense} vs revised {revised}"
        );
    }
}

#[test]
fn zero_delay_loops_sit_on_the_boundary_and_still_certify() {
    for seed in 0..6u64 {
        let circuit = stress::zero_delay_loops(6, 2, seed);
        let (tc, _) = certified_tc(&circuit, SimplexVariant::Dense);
        // The latch D→Q delay (1.0) keeps every loop strictly positive,
        // so a positive cycle time must exist even with zero-delay wires.
        assert!(tc > 0.0, "seed {seed}: Tc = {tc}");
    }
}

#[test]
fn degenerate_ties_certify_despite_alternative_optima() {
    // The fully symmetric circuit admits many optimal bases; the two
    // variants may pick different ones but must agree on the optimum and
    // both must pass the independent KKT check.
    for (l, k) in [(6usize, 2usize), (9, 3), (12, 4)] {
        let circuit = stress::degenerate_ties(l, k);
        let (dense, _) = certified_tc(&circuit, SimplexVariant::Dense);
        let (revised, _) = certified_tc(&circuit, SimplexVariant::Revised);
        assert!(
            (dense - revised).abs() <= 1e-6 * (1.0 + dense.abs()),
            "ties {l}x{k}: dense {dense} vs revised {revised}"
        );
    }
}

#[test]
fn example1_headline_number_certifies() {
    // The paper's Fig. 6 headline: Tc* = 110 ns at Δ41 = 80 ns — and the
    // certified path must reproduce it exactly (not just "roughly"),
    // proving certification does not perturb the solve.
    let circuit = smo::gen::paper::example1(80.0);
    let solution = min_cycle_time_with(&circuit, &MlpOptions::default()).expect("solves");
    assert!((solution.cycle_time() - 110.0).abs() < 1e-6);
    assert!(solution.certified());
    assert!(!solution.certificates().is_empty());
    for cert in solution.certificates() {
        assert!(cert.is_valid(), "invalid certificate: {cert}");
    }
}
