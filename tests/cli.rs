//! End-to-end tests of the `smo` command-line tool against the shipped
//! netlists in `circuits/`.

use std::path::Path;
use std::process::{Command, Output};

fn smo(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_smo"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("smo binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

#[test]
fn shipped_netlists_exist() {
    for f in [
        "circuits/example1.ckt",
        "circuits/example2.ckt",
        "circuits/gaas_mips.ckt",
        "circuits/appendix_fig1.ckt",
        "circuits/alu_bypass.ckt",
    ] {
        assert!(
            Path::new(env!("CARGO_MANIFEST_DIR")).join(f).exists(),
            "{f} missing"
        );
    }
}

#[test]
fn optimize_reproduces_paper_numbers() {
    let out = smo(&["optimize", "circuits/example1.ckt"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("optimal cycle time: 110.000000"));

    let out = smo(&["optimize", "circuits/gaas_mips.ckt"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("optimal cycle time: 4.4000"));
}

#[test]
fn verify_distinguishes_feasible_from_infeasible() {
    let ok = smo(&["verify", "circuits/example1.ckt", "110", "0,60", "60,30"]);
    assert!(ok.status.success(), "{}", stdout(&ok));
    assert!(stdout(&ok).contains("FEASIBLE"));

    let bad = smo(&["verify", "circuits/example1.ckt", "100", "0,50", "50,50"]);
    assert!(!bad.status.success());
    assert!(stdout(&bad).contains("VIOLATION"));
    assert!(stdout(&bad).contains("INFEASIBLE"));
}

#[test]
fn report_names_the_critical_segment() {
    let out = smo(&["report", "circuits/example2.ckt"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("optimal cycle time: 31"));
    assert!(text.contains("critical combinational segments"));
    assert!(text.contains("dTc/dΔ"));
}

#[test]
fn simulate_agrees_with_analysis_column() {
    let out = smo(&["simulate", "circuits/appendix_fig1.ckt", "32"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("0 violation(s)"), "{text}");
}

#[test]
fn gate_level_netlists_are_autodetected() {
    let out = smo(&["optimize", "circuits/alu_bypass.ckt"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("optimal cycle time: 8.80"));
}

#[test]
fn dot_and_lp_dumps_are_well_formed() {
    let dot = smo(&["dot", "circuits/example1.ckt"]);
    assert!(dot.status.success());
    assert!(stdout(&dot).starts_with("digraph circuit {"));

    let lp = smo(&["lp", "circuits/example1.ckt"]);
    assert!(lp.status.success());
    let text = stdout(&lp);
    assert!(text.starts_with("Minimize"));
    assert!(text.contains("Subject To"));
    assert!(text.trim_end().ends_with("End"));
}

#[test]
fn errors_are_reported_with_usage() {
    let out = smo(&["bogus"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"));
    assert!(err.contains("usage:"));

    let out = smo(&["optimize", "circuits/nope.ckt"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn lump_round_trips_and_preserves_optimum() {
    let out = smo(&["lump", "circuits/example1.ckt"]);
    assert!(out.status.success());
    // the lumped netlist is itself a valid netlist with the same optimum
    let lumped = stdout(&out);
    let dir = tempdir();
    let path = dir.join("lumped.ckt");
    std::fs::write(&path, &lumped).expect("writable");
    let opt = smo(&["optimize", path.to_str().expect("utf-8")]);
    assert!(opt.status.success());
    assert!(stdout(&opt).contains("optimal cycle time: 110.000000"));
}

#[test]
fn lint_runs_clean_on_every_shipped_netlist() {
    for f in [
        "circuits/example1.ckt",
        "circuits/example2.ckt",
        "circuits/gaas_mips.ckt",
        "circuits/appendix_fig1.ckt",
        "circuits/alu_bypass.ckt",
    ] {
        let out = smo(&["lint", f]);
        assert!(out.status.success(), "{f} lint failed");
        assert!(stdout(&out).contains("clean: no findings"), "{f}");
    }
}

#[test]
fn lint_flags_a_bad_netlist_and_fails() {
    let dir = tempdir();
    let path = dir.join("bad.ckt");
    std::fs::write(
        &path,
        "clock 2\nlatch A phase=1 setup=0 dq=0\nlatch B phase=2 setup=0 dq=0\n\
         path A B delay=0\npath B A delay=0\n",
    )
    .expect("writable");
    let out = smo(&["lint", path.to_str().expect("utf-8")]);
    assert!(!out.status.success(), "error findings must exit non-zero");
    let text = stdout(&out);
    assert!(text.contains("error: [zero-delay-loop]"), "{text}");
}

#[test]
fn analyze_reports_bracket_and_critical_cycle() {
    let out = smo(&["analyze", "circuits/example1.ckt"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(
        text.contains("cycle-time bracket: 110 <= Tc* <= 180"),
        "{text}"
    );
    assert!(
        text.contains("critical cycle: L1 → L2 → L3 → L4 → L1"),
        "{text}"
    );
    assert!(text.contains("LP optimum: Tc* = 110"), "{text}");
    assert!(text.contains("lower bound is tight"), "{text}");
    assert!(text.contains("presolve:"), "{text}");
}

#[test]
fn analyze_reports_presolve_removals_on_gaas_mips() {
    let out = smo(&["analyze", "circuits/gaas_mips.ckt"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("removed by family:"), "{text}");
    assert!(text.contains("FF departure x"), "{text}");
}

#[test]
fn analyze_succeeds_on_every_shipped_netlist() {
    for f in [
        "circuits/example1.ckt",
        "circuits/example2.ckt",
        "circuits/gaas_mips.ckt",
        "circuits/appendix_fig1.ckt",
        "circuits/alu_bypass.ckt",
    ] {
        let out = smo(&["analyze", f]);
        assert!(
            out.status.success(),
            "{f}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(stdout(&out).contains("cycle-time bracket:"), "{f}");
    }
}

#[test]
fn analyze_json_is_well_formed() {
    let out = smo(&["analyze", "circuits/example1.ckt", "--json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.trim_start().starts_with('{'), "{text}");
    assert!(text.trim_end().ends_with('}'), "{text}");
    assert!(text.contains("\"optimum\": 110"), "{text}");
    assert!(text.contains("\"lower\": 110"), "{text}");
    assert!(text.contains("\"upper\": 180"), "{text}");
    assert!(text.contains("\"removed_by_family\""), "{text}");
}

#[test]
fn analyze_rejects_bad_arguments() {
    let out = smo(&["analyze"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing netlist path"));

    let out = smo(&["analyze", "circuits/example1.ckt", "--frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unexpected argument"));
}

#[test]
fn lint_supports_json_output() {
    let out = smo(&["lint", "circuits/example1.ckt", "--json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("\"clean\": true"), "{text}");
    assert!(text.contains("\"errors\": 0"), "{text}");

    let dir = tempdir();
    let path = dir.join("bad-json.ckt");
    std::fs::write(
        &path,
        "clock 2\nlatch A phase=1 setup=0 dq=0\nlatch B phase=2 setup=0 dq=0\n\
         path A B delay=0\npath B A delay=0\n",
    )
    .expect("writable");
    let out = smo(&["lint", path.to_str().expect("utf-8"), "--json"]);
    assert!(!out.status.success(), "error findings must exit non-zero");
    let text = stdout(&out);
    assert!(text.contains("\"clean\": false"), "{text}");
    assert!(text.contains("\"rule\": \"zero-delay-loop\""), "{text}");
}

#[test]
fn verify_rejects_wrong_schedule_arity() {
    let out = smo(&["verify", "circuits/example1.ckt", "110", "0,60"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("1 phase(s) given but the circuit has 2"),
        "{err}"
    );
}

#[test]
fn diagnose_reports_optimum_when_uncapped() {
    let out = smo(&["diagnose", "circuits/example1.ckt"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("feasible: minimum cycle time 110"));
}

#[test]
fn diagnose_names_the_conflict_at_an_impossible_cycle_time() {
    let out = smo(&["diagnose", "circuits/example1.ckt", "--cycle-time", "100"]);
    assert!(
        !out.status.success(),
        "infeasible target must exit non-zero"
    );
    let text = stdout(&out);
    assert!(
        text.contains("no feasible clock schedule at cycle time 100"),
        "{text}"
    );
    assert!(text.contains("Farkas-certified"), "{text}");
    assert!(text.contains("L2R (eq. 19)"), "{text}");
    assert!(text.contains("cycle time capped at 100"), "{text}");

    let json = smo(&[
        "diagnose",
        "circuits/example1.ckt",
        "--cycle-time",
        "100",
        "--json",
    ]);
    let text = stdout(&json);
    assert!(text.contains("\"feasible\": false"), "{text}");
    assert!(text.contains("\"iis\": ["), "{text}");
}

#[test]
fn diagnose_rejects_bad_flags() {
    let out = smo(&["diagnose", "circuits/example1.ckt", "--cycle-time"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));

    let out = smo(&["diagnose", "circuits/example1.ckt", "--cycle-time", "-5"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("non-negative"));

    let out = smo(&["diagnose", "circuits/example1.ckt", "--frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unexpected argument"));
}

#[test]
fn montecarlo_reports_failure_rate() {
    let out = smo(&["montecarlo", "circuits/example1.ckt", "0.97", "50"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("runs failed"), "{text}");
    assert!(text.contains("worst shortfall"));
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("smo-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn zero_counts_and_nan_scale_are_rejected_not_panics() {
    let out = smo(&["simulate", "circuits/example1.ckt", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("at least 1"));

    let out = smo(&["montecarlo", "circuits/example1.ckt", "0.9", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("at least 1"));

    let out = smo(&["montecarlo", "circuits/example1.ckt", "NaN"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("positive finite"));
}

#[test]
fn solve_certifies_every_shipped_netlist() {
    for f in [
        "circuits/example1.ckt",
        "circuits/example2.ckt",
        "circuits/gaas_mips.ckt",
        "circuits/appendix_fig1.ckt",
        "circuits/alu_bypass.ckt",
    ] {
        // Default (auto): the shipped netlists are pure difference
        // systems, so the graph backend engages with its own certificate.
        let out = smo(&["solve", f]);
        assert!(
            out.status.success(),
            "{f}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = stdout(&out);
        assert!(text.contains("certified: true"), "{f}: {text}");
        assert!(text.contains("backend: graph"), "{f}: {text}");
        assert!(text.contains("graph: valid"), "{f}: {text}");

        // Forced LP: the simplex certificates must still be there.
        let out = smo(&["solve", f, "--backend", "lp"]);
        assert!(
            out.status.success(),
            "{f}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = stdout(&out);
        assert!(text.contains("certified: true"), "{f}: {text}");
        assert!(text.contains("certified optimal"), "{f}: {text}");
    }
}

#[test]
fn solve_json_carries_certificates() {
    // Graph path (default): one graph certificate, no LP residuals.
    let out = smo(&["solve", "circuits/example1.ckt", "--json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("\"cycle_time\": 110.000000"), "{text}");
    assert!(text.contains("\"certified\": true"), "{text}");
    assert!(text.contains("\"backend\": \"graph\""), "{text}");
    assert!(text.contains("\"graph_certificate\""), "{text}");
    assert!(text.contains("\"implied_lower\": 110.000000"), "{text}");

    // LP path: the KKT certificates, one per LP.
    let out = smo(&[
        "solve",
        "circuits/example1.ckt",
        "--backend",
        "lp",
        "--json",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("\"cycle_time\": 110.000000"), "{text}");
    assert!(text.contains("\"certified\": true"), "{text}");
    assert!(text.contains("\"backend\": \"lp\""), "{text}");
    assert!(text.contains("\"worst_residual\""), "{text}");
    assert!(text.contains("\"duality gap\""), "{text}");
    assert_eq!(
        text.matches("\"valid\": true").count(),
        2,
        "one certificate per LP (cycle-time + canonicalization): {text}"
    );
}

#[test]
fn solve_no_certify_skips_certificates() {
    // On the LP backend, --no-certify drops the KKT check entirely.
    let out = smo(&[
        "solve",
        "circuits/example1.ckt",
        "--backend",
        "lp",
        "--no-certify",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("certified: false"), "{text}");
    assert!(text.contains("optimal cycle time: 110.000000"), "{text}");

    // The graph certificate is a byproduct of the solve itself (checking
    // it costs one pass over the rows), so the fast path stays certified
    // even under --no-certify.
    let out = smo(&["solve", "circuits/example1.ckt", "--no-certify"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("certified: true"), "{text}");
    assert!(text.contains("backend: graph"), "{text}");
}

#[test]
fn solve_honors_a_generous_time_limit_and_rejects_bad_ones() {
    let out = smo(&["solve", "circuits/gaas_mips.ckt", "--time-limit", "60"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("certified: true"));

    let out = smo(&["solve", "circuits/example1.ckt", "--time-limit", "-1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("positive"));

    let out = smo(&["solve", "circuits/example1.ckt", "--frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unexpected argument"));
}

#[test]
fn check_passes_every_shipped_netlist_and_gates_the_racy_demo() {
    for f in [
        "circuits/example1.ckt",
        "circuits/example2.ckt",
        "circuits/gaas_mips.ckt",
        "circuits/appendix_fig1.ckt",
        "circuits/alu_bypass.ckt",
    ] {
        let out = smo(&["check", f]);
        assert!(
            out.status.success(),
            "{f}: {}{}",
            stdout(&out),
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(stdout(&out).contains("cycle time Tc ="), "{f}");
    }

    // The deliberately racy demo must fail the gate with exit code 2 and
    // a measured short-path witness.
    let out = smo(&["check", "circuits/race_demo.ckt"]);
    assert_eq!(out.status.code(), Some(2), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("error: [double-clocking-race]"), "{text}");
    assert!(text.contains("short path"), "{text}");
    assert!(text.contains("retires the race"), "{text}");
}

#[test]
fn check_json_emits_the_findings_schema() {
    let out = smo(&["check", "circuits/race_demo.ckt", "--json"]);
    assert_eq!(out.status.code(), Some(2));
    let text = stdout(&out);
    assert!(text.contains("\"clean\": false"), "{text}");
    assert!(text.contains("\"races\": 1"), "{text}");
    assert!(
        text.contains("\"rule\": \"double-clocking-race\""),
        "{text}"
    );
    assert!(text.contains("\"severity\": \"error\""), "{text}");

    let out = smo(&["check", "circuits/example1.ckt", "--json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("\"clean\": true"), "{text}");
    assert!(text.contains("\"races\": 0"), "{text}");
}

#[test]
fn check_allow_and_deny_adjust_the_gate() {
    // Allowing the race rule waives the demo's failure.
    let out = smo(&[
        "check",
        "circuits/race_demo.ckt",
        "--allow",
        "double-clocking-race",
        "--allow",
        "hold-margin",
    ]);
    assert!(out.status.success(), "{}", stdout(&out));

    // gaas_mips carries an unmeasured (warn-level) race; denying the rule
    // escalates it to a gate failure.
    let out = smo(&["check", "circuits/gaas_mips.ckt"]);
    assert!(out.status.success(), "{}", stdout(&out));
    let out = smo(&[
        "check",
        "circuits/gaas_mips.ckt",
        "--deny",
        "double-clocking-race",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stdout(&out));
}

#[test]
fn check_pinned_cycle_time_and_backends() {
    let out = smo(&["check", "circuits/example1.ckt", "--cycle-time", "150"]);
    assert!(out.status.success());
    assert!(
        stdout(&out).contains("cycle time Tc = 150"),
        "{}",
        stdout(&out)
    );

    for backend in ["graph", "lp", "auto"] {
        let out = smo(&["check", "circuits/example1.ckt", "--backend", backend]);
        assert!(out.status.success(), "--backend {backend}");
    }

    // An infeasible pinned cycle time is a check *error* (exit 1), not a
    // clean pass and not the findings exit code 2.
    let out = smo(&["check", "circuits/example1.ckt", "--cycle-time", "50"]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(String::from_utf8_lossy(&out.stderr).contains("check error:"));
}

#[test]
fn solve_max_input_mb_gates_oversized_netlists() {
    // A valid netlist padded past the 4 MiB default cap with comment
    // lines: rejected with the structured limit error by default,
    // accepted once the operator raises the cap, and a zero cap is
    // refused outright.
    let dir = tempdir();
    let path = dir.join("padded.ckt");
    let mut src = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("circuits/example1.ckt"),
    )
    .expect("shipped netlist reads");
    let pad = format!("# {}\n", "x".repeat(1000));
    while src.len() <= 4 << 20 {
        src.push_str(&pad);
    }
    std::fs::write(&path, &src).expect("writable");
    let p = path.to_str().expect("utf-8");

    let out = smo(&["solve", p]);
    assert!(!out.status.success(), "default limits must reject >4 MiB");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("exceeds the input bytes limit"), "{err}");

    let out = smo(&["solve", p, "--max-input-mb", "8"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("certified: true"));

    let out = smo(&["solve", p, "--max-input-mb", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("at least 1"));
}

#[test]
fn solve_under_the_raised_cap_still_enforces_it() {
    // Just under the raised cap parses; just over it still fails — the
    // flag moves the fence, it does not remove it.
    let dir = tempdir();
    let path = dir.join("underpadded.ckt");
    let mut src = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("circuits/example1.ckt"),
    )
    .expect("shipped netlist reads");
    let pad = format!("# {}\n", "x".repeat(1000));
    while src.len() <= (5 << 20) - 2048 {
        src.push_str(&pad);
    }
    std::fs::write(&path, &src).expect("writable");
    let p = path.to_str().expect("utf-8");

    let out = smo(&["solve", p, "--max-input-mb", "5"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = smo(&["solve", p, "--max-input-mb", "4"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("exceeds the input bytes limit"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn solve_pricing_flag_is_accepted_and_verdict_invariant() {
    for pricing in ["devex", "partial", "bland"] {
        let out = smo(&[
            "solve",
            "circuits/example1.ckt",
            "--backend",
            "lp",
            "--variant",
            "sparse",
            "--pricing",
            pricing,
        ]);
        assert!(
            out.status.success(),
            "--pricing {pricing}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = stdout(&out);
        assert!(text.contains("110.000000"), "--pricing {pricing}: {text}");
        assert!(text.contains("certified: true"), "--pricing {pricing}");
    }

    let out = smo(&["solve", "circuits/example1.ckt", "--pricing", "quantum"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown pricing"));
}

#[test]
fn check_rejects_bad_arguments() {
    let out = smo(&["check"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing netlist path"));

    let out = smo(&["check", "circuits/example1.ckt", "--allow", "bogus-rule"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown rule"));

    let out = smo(&["check", "circuits/example1.ckt", "--cycle-time", "nope"]);
    assert!(!out.status.success());

    let out = smo(&["check", "circuits/example1.ckt", "--frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unexpected argument"));
}
