//! Property test of the simplex solver against an independent brute-force
//! reference: for random *boxed* two-variable LPs, the optimum of a
//! non-empty bounded polygon lies at a vertex, and all vertices can be
//! enumerated as pairwise intersections of constraint boundaries.

mod common;

use proptest::prelude::*;
use smo::lp::{LinExpr, Problem, Sense, Status};

#[derive(Debug, Clone, Copy)]
struct RowSpec {
    a: f64,
    b: f64,
    rhs: f64,
    le: bool,
}

fn row_strategy() -> impl Strategy<Value = RowSpec> {
    (
        -3.0f64..3.0,
        -3.0f64..3.0,
        -10.0f64..10.0,
        proptest::bool::ANY,
    )
        .prop_map(|(a, b, rhs, le)| RowSpec { a, b, rhs, le })
        .prop_filter("non-degenerate row", |r| r.a.abs() + r.b.abs() > 0.1)
}

/// All boundary lines: the user rows plus the axes and the box edges.
fn lines(rows: &[RowSpec], upper: f64) -> Vec<(f64, f64, f64)> {
    let mut ls: Vec<(f64, f64, f64)> = rows.iter().map(|r| (r.a, r.b, r.rhs)).collect();
    ls.push((1.0, 0.0, 0.0)); // x = 0
    ls.push((0.0, 1.0, 0.0)); // y = 0
    ls.push((1.0, 0.0, upper)); // x = U
    ls.push((0.0, 1.0, upper)); // y = U
    ls
}

fn feasible(rows: &[RowSpec], upper: f64, x: f64, y: f64) -> bool {
    const T: f64 = 1e-7;
    if x < -T || y < -T || x > upper + T || y > upper + T {
        return false;
    }
    rows.iter().all(|r| {
        let lhs = r.a * x + r.b * y;
        if r.le {
            lhs <= r.rhs + T
        } else {
            lhs >= r.rhs - T
        }
    })
}

/// Brute-force optimum of `min cx·x + cy·y` over the boxed polygon, or
/// `None` when the region is empty.
fn brute_force(rows: &[RowSpec], upper: f64, cx: f64, cy: f64) -> Option<f64> {
    let ls = lines(rows, upper);
    let mut best: Option<f64> = None;
    for i in 0..ls.len() {
        for j in (i + 1)..ls.len() {
            let (a1, b1, c1) = ls[i];
            let (a2, b2, c2) = ls[j];
            let det = a1 * b2 - a2 * b1;
            if det.abs() < 1e-9 {
                continue;
            }
            let x = (c1 * b2 - c2 * b1) / det;
            let y = (a1 * c2 - a2 * c1) / det;
            if feasible(rows, upper, x, y) {
                let z = cx * x + cy * y;
                best = Some(best.map_or(z, |b: f64| b.min(z)));
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn simplex_matches_vertex_enumeration(
        rows in proptest::collection::vec(row_strategy(), 1..6),
        cx in -2.0f64..2.0,
        cy in -2.0f64..2.0,
        upper in 1.0f64..20.0,
    ) {
        let mut p = Problem::new();
        let x = p.add_var_bounded("x", 0.0, upper);
        let y = p.add_var_bounded("y", 0.0, upper);
        for r in &rows {
            let expr = r.a * LinExpr::from(x) + r.b * LinExpr::from(y);
            p.constrain(expr, if r.le { Sense::Le } else { Sense::Ge }, r.rhs);
        }
        p.minimize(cx * LinExpr::from(x) + cy * LinExpr::from(y));
        let sol = p.solve().expect("well-formed model");
        match brute_force(&rows, upper, cx, cy) {
            Some(reference) => {
                prop_assert_eq!(sol.status(), Status::Optimal);
                let got = sol.objective().expect("optimal");
                prop_assert!(
                    (got - reference).abs() < 1e-5 * (1.0 + reference.abs()),
                    "simplex {got} vs brute force {reference}"
                );
            }
            None => {
                prop_assert_eq!(sol.status(), Status::Infeasible);
            }
        }
    }

    /// Dual values ARE shadow prices: perturbing a RHS by ε changes the
    /// optimum by dual·ε, whenever the perturbed model stays optimal and
    /// the basis is stable (checked by comparing both one-sided derivatives).
    #[test]
    fn duals_predict_rhs_perturbations(
        rows in proptest::collection::vec(row_strategy(), 1..5),
        cx in -2.0f64..2.0,
        cy in -2.0f64..2.0,
    ) {
        let upper = 10.0;
        let build = |delta: f64, which: usize| {
            let mut p = Problem::new();
            let x = p.add_var_bounded("x", 0.0, upper);
            let y = p.add_var_bounded("y", 0.0, upper);
            let mut ids = Vec::new();
            for (i, r) in rows.iter().enumerate() {
                let expr = r.a * LinExpr::from(x) + r.b * LinExpr::from(y);
                let rhs = r.rhs + if i == which { delta } else { 0.0 };
                ids.push(p.constrain(expr, if r.le { Sense::Le } else { Sense::Ge }, rhs));
            }
            p.minimize(cx * LinExpr::from(x) + cy * LinExpr::from(y));
            (p, ids)
        };
        let (p0, ids) = build(0.0, usize::MAX);
        let sol0 = p0.solve().expect("solves");
        prop_assume!(sol0.status() == Status::Optimal);
        let base = sol0.objective().expect("optimal");
        let sol0 = sol0.into_optimal().expect("optimal");
        const EPS: f64 = 1e-5;
        for (i, id) in ids.iter().enumerate() {
            let dual = sol0.dual(*id);
            // The perturbed problems differ from `p0` in one RHS entry only,
            // so the base optimal basis is a genuine warm start; the helper
            // asserts the warm re-solves agree with these cold verdicts.
            let plus = common::solve_checked(&build(EPS, i).0, sol0.basis());
            let minus = common::solve_checked(&build(-EPS, i).0, sol0.basis());
            let (Some(zp), Some(zm)) = (plus.objective(), minus.objective()) else {
                continue; // perturbation made it infeasible: degenerate edge
            };
            let fwd = (zp - base) / EPS;
            let bwd = (base - zm) / EPS;
            // only assert where the two one-sided derivatives agree (no
            // basis change within ±ε)
            if (fwd - bwd).abs() < 1e-4 {
                prop_assert!(
                    (dual - fwd).abs() < 1e-3,
                    "row {i}: dual {dual} vs measured {fwd}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The dense and revised simplex implementations agree on status and
    /// optimum across random LPs (including infeasible ones).
    #[test]
    fn dense_and_revised_simplex_agree(
        rows in proptest::collection::vec(row_strategy(), 1..7),
        cx in -2.0f64..2.0,
        cy in -2.0f64..2.0,
        cz in -2.0f64..2.0,
        upper in 1.0f64..20.0,
    ) {
        use smo::lp::SimplexVariant;
        let mut p = Problem::new();
        let x = p.add_var_bounded("x", 0.0, upper);
        let y = p.add_var_bounded("y", 0.0, upper);
        let z = p.add_var_bounded("z", 0.0, upper);
        for (i, r) in rows.iter().enumerate() {
            // reuse the 2-D rows, rotating which pair of variables they touch
            let (u, v) = match i % 3 {
                0 => (x, y),
                1 => (y, z),
                _ => (x, z),
            };
            let expr = r.a * LinExpr::from(u) + r.b * LinExpr::from(v);
            p.constrain(expr, if r.le { Sense::Le } else { Sense::Ge }, r.rhs);
        }
        p.minimize(cx * LinExpr::from(x) + cy * LinExpr::from(y) + cz * LinExpr::from(z));
        let dense = p.solve_with(SimplexVariant::Dense).expect("dense solves");
        let revised = p.solve_with(SimplexVariant::Revised).expect("revised solves");
        prop_assert_eq!(dense.status(), revised.status());
        if dense.status() == Status::Optimal {
            let (a, b) = (dense.objective().unwrap(), revised.objective().unwrap());
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "dense {a} vs revised {b}");
        }
    }
}
