//! Golden tests for the `smo gen` pipelined-datapath generator.
//!
//! The generator's contract is *byte determinism*: the same
//! `(config, seed)` pair must produce the identical netlist forever —
//! warm-start caches, checked-in benchmark curves and the
//! scale-differential suite all key off that. A checked-in golden netlist
//! (`tests/golden/`) pins the bytes; the remaining tests pin the semantic
//! contract — generated circuits lint clean and round-trip the
//! size-limited netlist parser unchanged.

use smo::analyze::lint;
use smo::circuit::netlist::{self, ParseLimits};
use smo::gen::datapath::{pipelined_datapath, DatapathConfig};

fn golden_config() -> DatapathConfig {
    DatapathConfig {
        stages: 3,
        width: 4,
        phases: 2,
        fanin: 2,
        ..DatapathConfig::default()
    }
}

#[test]
fn golden_netlist_is_byte_identical() {
    let golden = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/datapath_s3w4p2f2_seed9.ckt");
    let expected = std::fs::read_to_string(&golden).expect("golden netlist is checked in");
    let generated = netlist::write(&pipelined_datapath(&golden_config(), 9));
    assert_eq!(
        generated, expected,
        "generator output drifted from the checked-in golden netlist \
         (tests/golden/datapath_s3w4p2f2_seed9.ckt); byte determinism is a \
         published contract — if the change is intentional, regenerate the \
         golden with `smo gen --stages 3 --width 4 --phases 2 --fanin 2 --seed 9`"
    );
}

#[test]
fn identical_seed_and_params_are_byte_identical_and_seeds_differ() {
    let config = DatapathConfig::with_latches(500);
    let a = netlist::write(&pipelined_datapath(&config, 123));
    let b = netlist::write(&pipelined_datapath(&config, 123));
    let c = netlist::write(&pipelined_datapath(&config, 124));
    assert_eq!(a, b, "same (config, seed) must be byte-identical");
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn generated_circuits_lint_clean() {
    for (config, seed) in [
        (golden_config(), 9),
        (DatapathConfig::default(), 7),
        (
            DatapathConfig {
                stages: 8,
                width: 5,
                phases: 4,
                fanin: 3,
                ..DatapathConfig::default()
            },
            31,
        ),
        (DatapathConfig::with_latches(1_000), 7),
    ] {
        let circuit = pipelined_datapath(&config, seed);
        let report = lint(&circuit);
        assert!(
            report.is_clean(),
            "datapath {config:?} seed {seed} should lint clean:\n{}",
            report.to_json()
        );
    }
}

#[test]
fn generated_netlists_round_trip_the_limited_parser() {
    for latches in [60, 1_000] {
        let circuit = pipelined_datapath(&DatapathConfig::with_latches(latches), 7);
        let text = netlist::write(&circuit);
        let reparsed = netlist::parse_with_limits(&text, &ParseLimits::default())
            .expect("generated netlist parses under the default limits");
        assert_eq!(
            netlist::write(&reparsed),
            text,
            "round-trip must be the identity on generator output"
        );
        assert_eq!(reparsed.num_latches(), circuit.num_latches());
        assert_eq!(reparsed.num_edges(), circuit.num_edges());
    }
}
