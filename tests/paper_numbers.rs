//! The paper's headline numbers, asserted end-to-end through the public
//! facade (`smo::…`). This file is the machine-checked half of
//! EXPERIMENTS.md.

use smo::gen::paper;
use smo::prelude::*;
use smo::timing::baseline;

fn tc(circuit: &smo::circuit::Circuit) -> f64 {
    min_cycle_time(circuit).expect("solves").cycle_time()
}

#[test]
fn example1_cycle_times_match_figure6() {
    // Fig. 6: Tc = 110 / 120 / 140 ns at Δ41 = 80 / 100 / 120 ns.
    assert!((tc(&paper::example1(80.0)) - 110.0).abs() < 1e-6);
    assert!((tc(&paper::example1(100.0)) - 120.0).abs() < 1e-6);
    assert!((tc(&paper::example1(120.0)) - 140.0).abs() < 1e-6);
}

#[test]
fn example1_figure6c_departure_times() {
    // "a cycle time of 140 ns with signals departing from latches 1
    // through 4, respectively, at 60 ns, 90 ns, 140 ns, and 210 ns" and
    // the L3 input valid 20 ns before φ1 rises.
    let circuit = paper::example1(120.0);
    let sol = min_cycle_time(&circuit).expect("solves");
    let s = sol.schedule();
    let p1 = PhaseId::from_number(1);
    let p2 = PhaseId::from_number(2);
    let abs = [
        s.start(p1) + sol.departure(LatchId::new(0)),
        s.start(p2) + sol.departure(LatchId::new(1)),
        s.start(p1) + sol.departure(LatchId::new(2)) + s.cycle(),
        s.start(p2) + sol.departure(LatchId::new(3)) + s.cycle(),
    ];
    for (got, want) in abs.iter().zip([60.0, 90.0, 140.0, 210.0]) {
        assert!((got - want).abs() < 1e-6, "absolute departures {abs:?}");
    }
    assert!((sol.arrival(LatchId::new(2)) + 20.0).abs() < 1e-6);
}

#[test]
fn example1_figure7_closed_form_and_breakpoints() {
    // Tc* = max(average loop delay, cycle-delay difference), flat below
    // Δ41 = 20, slope ½ to 100, slope 1 beyond.
    for d41 in [0.0_f64, 15.0, 20.0, 45.0, 60.0, 99.0, 100.0, 101.0, 139.0] {
        let expect = ((140.0 + d41) / 2.0).max(d41 + 20.0).max(80.0);
        assert!(
            (tc(&paper::example1(d41)) - expect).abs() < 1e-6,
            "Δ41 = {d41}"
        );
    }
}

#[test]
fn example1_nrip_like_baseline_optimal_only_at_60() {
    let opt60 = tc(&paper::example1(60.0));
    let sym60 = baseline::symmetric_clock(&paper::example1(60.0))
        .expect("runs")
        .cycle_time();
    assert!(
        (opt60 - sym60).abs() < 1e-6,
        "optimal at the balanced point"
    );
    for d41 in [80.0, 90.0, 100.0] {
        let opt = tc(&paper::example1(d41));
        let sym = baseline::symmetric_clock(&paper::example1(d41))
            .expect("runs")
            .cycle_time();
        assert!(sym > opt + 1e-6, "suboptimal away from it (Δ41 = {d41})");
    }
}

#[test]
fn example2_nrip_like_gap_is_large() {
    // The paper reports +35 % for its Example 2; our documented stand-in
    // is tuned to the same ballpark.
    let circuit = paper::example2();
    let opt = tc(&circuit);
    let sym = baseline::symmetric_clock(&circuit)
        .expect("runs")
        .cycle_time();
    let gap = (sym / opt - 1.0) * 100.0;
    assert!((30.0..45.0).contains(&gap), "gap = {gap:.1}%");
}

#[test]
fn example2_has_multiple_critical_segments() {
    let circuit = paper::example2();
    let model = smo::timing::TimingModel::build(&circuit).expect("model");
    let report = smo::timing::critical_report(&circuit, &model).expect("report");
    assert!(report.edges.len() >= 2, "critical *segments*, not one path");
}

#[test]
fn gaas_matches_example3_observations() {
    let circuit = paper::gaas_mips();
    assert_eq!(circuit.num_syncs(), 18);
    assert_eq!(circuit.num_latches(), 15);
    assert_eq!(circuit.num_flip_flops(), 3);
    let sol = min_cycle_time(&circuit).expect("solves");
    // optimal Tc ≈ 4.4 ns, ~10 % above the 4-ns target
    assert!(
        (sol.cycle_time() - 4.4).abs() < 0.05,
        "Tc = {}",
        sol.cycle_time()
    );
    let over_target = (sol.cycle_time() / 4.0 - 1.0) * 100.0;
    assert!(
        (5.0..15.0).contains(&over_target),
        "{over_target:.1}% over target"
    );
    // K13 = K31 = 0
    let k = circuit.k_matrix();
    assert!(!k.get(0, 2) && !k.get(2, 0));
}

#[test]
fn gaas_phi3_can_be_fully_overlapped_by_phi1_at_no_cost() {
    use smo::lp::{LinExpr, Sense};
    use smo::timing::{solve_model, ConstraintOptions, TimingModel, UpdateMode};
    let circuit = paper::gaas_mips();
    let tc_opt = tc(&circuit);
    let mut model = TimingModel::build_with(
        &circuit,
        &ConstraintOptions {
            fixed_cycle: Some(tc_opt),
            ..Default::default()
        },
    )
    .expect("model");
    let vars = model.vars().clone();
    let (p1, p3) = (PhaseId::from_number(1), PhaseId::from_number(3));
    let p = model.problem_mut();
    p.constrain(
        LinExpr::from(vars.start(p3)) - vars.start(p1) - vars.tc(),
        Sense::Ge,
        0.0,
    );
    p.constrain(
        LinExpr::from(vars.start(p3)) + vars.width(p3)
            - vars.start(p1)
            - vars.width(p1)
            - vars.tc(),
        Sense::Le,
        0.0,
    );
    let sol = solve_model(&circuit, &model, UpdateMode::GaussSeidel)
        .expect("overlap feasible at the optimal Tc");
    assert!((sol.cycle_time() - tc_opt).abs() < 1e-6);
}

#[test]
fn appendix_circuit_constraint_counts_and_bound() {
    let circuit = paper::appendix_fig1(10.0, 1.0, 2.0);
    let model = smo::timing::TimingModel::build(&circuit).expect("model");
    // C1: 8, C2: 3, C3: 9 pairs, L1: 11, L2R: 19 edges → 50 rows
    assert_eq!(model.num_constraints(), 50);
    // The rigorous form of the paper's §IV bound: at most 3k−1+k² clock
    // rows plus (F+1)·l latch rows. (The paper's nominal "4k + (F+1)l"
    // undercounts C3 when the K matrix is dense, as it is here: 9 pairs.)
    let k = circuit.num_phases();
    let bound = (3 * k - 1 + k * k) + (circuit.max_fanin() + 1) * circuit.num_syncs();
    assert!(model.num_constraints() <= bound);
    // and it solves with a verifiable schedule
    let sol = min_cycle_time(&circuit).expect("solves");
    assert!(verify(&circuit, sol.schedule()).is_feasible());
}

#[test]
fn table1_transistor_counts() {
    let sum: u32 = paper::GAAS_BLOCKS.iter().map(|b| b.transistors).sum();
    assert_eq!(sum, paper::GAAS_TOTAL_TRANSISTORS);
    assert_eq!(paper::GAAS_TOTAL_TRANSISTORS, 30_148);
    assert_eq!(paper::GAAS_BLOCKS.len(), 5);
}

#[test]
fn mlp_update_terminates_in_a_handful_of_sweeps_on_all_examples() {
    for circuit in [
        paper::example1(80.0),
        paper::example1(120.0),
        paper::example2(),
        paper::gaas_mips(),
        paper::appendix_fig1(10.0, 1.0, 2.0),
    ] {
        let sol = min_cycle_time(&circuit).expect("solves");
        assert!(
            sol.update_iterations() <= 8,
            "{} sweeps",
            sol.update_iterations()
        );
    }
}

#[test]
fn shipped_gaas_netlist_matches_the_library_model() {
    let src = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("circuits/gaas_mips.ckt"),
    )
    .expect("shipped netlist exists");
    let from_file = smo::circuit::netlist::parse(&src).expect("parses");
    assert_eq!(from_file, paper::gaas_mips());
}

#[test]
fn shipped_example_netlists_solve_to_paper_numbers() {
    let base = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    for (file, expect) in [
        ("circuits/example1.ckt", 110.0),
        ("circuits/example2.ckt", 31.0),
        ("circuits/gaas_mips.ckt", 4.4),
    ] {
        let src = std::fs::read_to_string(base.join(file)).expect("exists");
        let circuit = smo::circuit::netlist::parse(&src).expect("parses");
        let got = tc(&circuit);
        assert!((got - expect).abs() < 1e-6, "{file}: {got} vs {expect}");
    }
}

#[test]
fn prelude_exposes_the_core_workflow() {
    // compile-time check that the documented prelude surface is complete
    use smo::prelude::*;
    let mut b = CircuitBuilder::new(1);
    b.add_latch("a", PhaseId::from_number(1), 1.0, 1.0);
    let c: smo::circuit::Circuit = b.build().expect("builds");
    let sol: TimingSolution = min_cycle_time(&c).expect("solves");
    let sched: &ClockSchedule = sol.schedule();
    assert!(verify(&c, sched).is_feasible());
    let _unused: LatchId = LatchId::new(0);
    let _unused2: SyncKind = SyncKind::Latch;
    let _unused3: ClockSpec = ClockSpec::new(1);
}

#[test]
fn wrapped_phase_schedules_render_and_verify() {
    // φ2 wraps past the cycle end; rendering and analysis must both cope.
    let circuit = paper::example1(80.0);
    let sched = ClockSchedule::new(110.0, vec![0.0, 80.0], vec![60.0, 40.0]).expect("valid");
    let report = verify(&circuit, &sched);
    // wrapping makes φ2 overlap the next φ1 → the K21 nonoverlap row fails
    assert!(!report.is_feasible());
    let art = smo::timing::render_schedule(&sched);
    assert!(art.contains('█'));
}
