//! Differential and determinism tests for the warm-start layer and the
//! sweep engine: warm solves must agree with cold solves on every shipped
//! netlist and on random circuits, a repaired basis must never smuggle in
//! an uncertified verdict, and `smo sweep --json` must produce the same
//! bytes at any `--jobs` value.

mod common;

use proptest::prelude::*;
use smo::circuit::EdgeId;
use smo::gen::random::{perturbed_delays, random_circuit, GenConfig};
use smo::lp::{certifies_infeasibility, RecoveryPolicy, SimplexVariant, Status, Tol};
use smo::timing::{cycle_time_curve, ConstraintOptions, TimingModel};

use common::{load_circuit, min_tc_checked, SHIPPED_NETLISTS};

/// Applies the delay vector to a clone of `model`, skipping edges that have
/// no propagation row (their delay is absorbed by another constraint kind).
fn perturb(model: &TimingModel, circuit: &smo::circuit::Circuit, delays: &[f64]) -> TimingModel {
    let mut m = model.clone();
    for (e, (edge, &d)) in circuit.edges().iter().zip(delays).enumerate() {
        let id = EdgeId::new(e);
        if d != edge.max_delay && m.edge_constraint(id).is_some() {
            m.set_edge_delay(id, edge.max_delay, d);
        }
    }
    m
}

/// Asserts that warm solves of `m` from `basis` match its cold optimum with
/// both simplex variants, and that the certified warm path also agrees.
fn assert_warm_matches_cold(m: &TimingModel, basis: &smo::lp::Basis) -> f64 {
    let cold = m.solve_lp().expect("perturbed model stays feasible");
    let tc = cold.objective();
    for variant in [SimplexVariant::Dense, SimplexVariant::Revised] {
        let warm = m.solve_lp_from_basis(variant, basis).expect("warm solves");
        let w = warm.objective();
        assert!(
            Tol::TIGHT.is_zero(w - tc, tc),
            "{variant:?}: warm Tc {w} vs cold {tc}"
        );
    }
    let policy = RecoveryPolicy {
        variant: SimplexVariant::Revised,
        ..Default::default()
    };
    let (opt, cert) = m
        .solve_lp_certified_from_basis(&policy, Some(basis))
        .expect("certified warm solve succeeds");
    assert!(cert.is_valid(), "warm certificate invalid: {cert}");
    let w = opt.objective();
    assert!(
        Tol::TIGHT.is_zero(w - tc, tc),
        "certified warm Tc {w} vs cold {tc}"
    );
    tc
}

/// On every shipped netlist: solve cold, bump every edge delay by 10 %, and
/// check that warm re-solves from the stale basis agree with a from-scratch
/// solve of the perturbed model (both variants, plus the certified path).
#[test]
fn warm_agrees_with_cold_on_every_shipped_netlist() {
    for path in SHIPPED_NETLISTS {
        let circuit = load_circuit(path);
        let (_, basis) = min_tc_checked(&circuit, None);
        let model = TimingModel::build(&circuit).expect("model builds");
        let bumped: Vec<f64> = circuit.edges().iter().map(|e| 1.1 * e.max_delay).collect();
        let m = perturb(&model, &circuit, &bumped);
        assert_warm_matches_cold(&m, &basis);
    }
}

/// An optimal basis taken under a loose cycle-time cap, replayed against
/// the same matrix with an impossible cap, must come back `Infeasible`
/// with a Farkas certificate — repair never launders an uncertified
/// `Optimal` out of a stale basis.
#[test]
fn repair_never_returns_an_uncertified_optimum() {
    for path in SHIPPED_NETLISTS {
        let circuit = load_circuit(path);
        let (tc, _) = min_tc_checked(&circuit, None);
        let loose = ConstraintOptions {
            max_cycle: Some(2.0 * tc),
            ..Default::default()
        };
        let model = TimingModel::build_with(&circuit, &loose).expect("model builds");
        let sol = model.solve_lp().expect("loose cap is feasible");
        let basis = sol.basis().cloned().expect("optimal solve has a basis");

        let tight = ConstraintOptions {
            max_cycle: Some(0.5 * tc),
            ..Default::default()
        };
        let capped = TimingModel::build_with(&circuit, &tight).expect("model builds");
        for variant in [SimplexVariant::Dense, SimplexVariant::Revised] {
            let warm = capped
                .problem()
                .solve_from_basis_with(variant, &basis)
                .expect("solver runs");
            assert_eq!(
                warm.status(),
                Status::Infeasible,
                "{path} / {variant:?}: impossible cap accepted"
            );
            let y = warm.farkas().expect("infeasible verdict carries Farkas");
            assert!(
                certifies_infeasibility(capped.problem(), y),
                "{path} / {variant:?}: Farkas vector does not certify"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Warm and cold solves agree on generator-produced circuits under
    /// random ±20 % delay perturbations (the sweep engine's exact workload).
    #[test]
    fn prop_warm_agrees_with_cold_on_random_circuits(
        seed in 0u64..200,
        perturb_seed in 0u64..50,
    ) {
        let cfg = GenConfig {
            phases: 2 + (seed as usize % 3),
            latches: 4 + (seed as usize % 12),
            edges: 6 + (seed as usize % 18),
            flip_flop_prob: 0.15,
            ..Default::default()
        };
        let circuit = random_circuit(&cfg, seed);
        let model = TimingModel::build(&circuit).expect("model builds");
        let cold = model.solve_lp().expect("plain SMO models are feasible");
        let basis = cold.basis().cloned().expect("optimal solve has a basis");
        let delays = perturbed_delays(&circuit, 0.2, perturb_seed);
        let m = perturb(&model, &circuit, &delays);
        assert_warm_matches_cold(&m, &basis);
    }
}

/// Runs the `smo` binary from the repository root (shipped netlists are
/// addressed by relative path).
fn smo(args: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_smo"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("smo binary runs")
}

/// `smo sweep --json` is byte-identical at any `--jobs` value, in both
/// sweep modes — the determinism contract the JSON output promises.
#[test]
fn sweep_json_is_byte_identical_for_any_job_count() {
    let modes: [&[&str]; 2] = [
        &["--param", "delay", "--runs", "12", "--spread", "0.1"],
        &[
            "--param",
            "tc",
            "--runs",
            "12",
            "--edge",
            "3",
            "--max-delay",
            "140",
        ],
    ];
    for mode in modes {
        let mut outputs = Vec::new();
        for jobs in ["1", "2", "8"] {
            let mut args = vec!["sweep", "circuits/example1.ckt", "--json", "--jobs", jobs];
            args.extend_from_slice(mode);
            let out = smo(&args);
            assert!(
                out.status.success(),
                "{}",
                String::from_utf8_lossy(&out.stderr)
            );
            outputs.push(out.stdout);
        }
        assert_eq!(outputs[0], outputs[1], "{mode:?}: --jobs 1 vs 2 differ");
        assert_eq!(outputs[0], outputs[2], "{mode:?}: --jobs 1 vs 8 differ");
    }
}

/// Zero-variance Monte-Carlo oracle: with `--spread 0` every perturbed
/// re-solve of example1 must reproduce the paper's Tc* = 110 exactly.
#[test]
fn zero_spread_sweep_reproduces_the_paper_optimum() {
    let out = smo(&[
        "sweep",
        "circuits/example1.ckt",
        "--runs",
        "8",
        "--spread",
        "0",
        "--json",
    ]);
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        json.matches("\"cycle_time\": 110.000000").count(),
        8,
        "not every run hit Tc* = 110: {json}"
    );
    assert!(json.contains("\"base_cycle_time\": 110.000000"));
}

/// Parametric-sweep oracle: the `--param tc` breakpoints reported by the
/// CLI equal the exact `cycle_time_curve` breakpoints (Fig. 7: the curve
/// over Δ41 breaks at 20 and 100).
#[test]
fn tc_sweep_breakpoints_match_the_parametric_curve() {
    let circuit = load_circuit("circuits/example1.ckt");
    let model = TimingModel::build(&circuit).expect("model builds");
    let curve = cycle_time_curve(&circuit, &model, EdgeId::new(3), 140.0).expect("curve solves");
    assert_eq!(curve.breakpoints(), vec![20.0, 100.0]);

    let out = smo(&[
        "sweep",
        "circuits/example1.ckt",
        "--param",
        "tc",
        "--edge",
        "3",
        "--max-delay",
        "140",
        "--runs",
        "8",
        "--json",
    ]);
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(
        json.contains("\"breakpoints\": [20.000000, 100.000000]"),
        "CLI breakpoints disagree with the parametric curve: {json}"
    );
}
