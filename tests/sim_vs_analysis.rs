//! The behavioural simulator and the analytical verifier must agree — on
//! steady-state timing, on feasibility, and on *why* a schedule fails.

use smo::gen::paper;
use smo::gen::random::{random_circuit, GenConfig};
use smo::prelude::*;
use smo::sim::{simulate, SimOptions, SimViolation};
use smo::timing::{verify_with, AnalysisOptions, Violation};

fn schedules_for(circuit: &smo::circuit::Circuit) -> Vec<ClockSchedule> {
    let opt = min_cycle_time(circuit).expect("solves");
    let mut out = vec![opt.schedule().clone()];
    // a relaxed schedule, a shrunk one, and symmetric shapes
    out.push(opt.schedule().scaled(1.25));
    out.push(opt.schedule().scaled(0.9));
    let k = circuit.num_phases();
    for f in [0.8, 1.0, 1.3] {
        if let Ok(s) = ClockSchedule::symmetric(k, opt.cycle_time() * f, 0.0) {
            out.push(s);
        }
    }
    out
}

#[test]
fn simulator_and_verifier_agree_on_paper_circuits() {
    for circuit in [
        paper::example1(80.0),
        paper::example1(120.0),
        paper::example2(),
        paper::gaas_mips(),
        paper::appendix_fig1(10.0, 1.0, 2.0),
    ] {
        for sched in schedules_for(&circuit) {
            compare(&circuit, &sched);
        }
    }
}

#[test]
fn simulator_and_verifier_agree_on_random_circuits() {
    for seed in 0..10u64 {
        let circuit = random_circuit(
            &GenConfig {
                phases: 2 + (seed as usize % 3),
                latches: 8 + seed as usize,
                edges: 14 + 2 * seed as usize,
                flip_flop_prob: if seed % 2 == 0 { 0.0 } else { 0.25 },
                ..Default::default()
            },
            seed,
        );
        for sched in schedules_for(&circuit) {
            compare(&circuit, &sched);
        }
    }
}

/// Core comparison: run both tools on the same (circuit, schedule).
fn compare(circuit: &smo::circuit::Circuit, sched: &ClockSchedule) {
    let report = verify(circuit, sched);
    // Skip clock-constraint failures: the simulator assumes a plausible
    // schedule and checks data timing only.
    if report
        .violations()
        .iter()
        .any(|v| matches!(v, Violation::Clock { .. }))
    {
        return;
    }
    let trace = simulate(
        circuit,
        sched,
        &SimOptions {
            max_waves: 4 * circuit.num_syncs() + 16,
            ..Default::default()
        },
    );
    let analysis_loop = report
        .violations()
        .iter()
        .any(|v| matches!(v, Violation::PositiveLoop { .. }));
    if analysis_loop {
        // divergence: the simulator must fail to converge
        assert!(
            !trace.converged(),
            "analysis diagnosed a positive loop but the simulation settled"
        );
        return;
    }
    assert!(
        trace.converged(),
        "analysis converged but simulation did not"
    );
    // identical steady-state departures
    for (i, (s, a)) in trace
        .steady_departures()
        .iter()
        .zip(report.departures())
        .enumerate()
    {
        assert!((s - a).abs() < 1e-6, "latch {i}: sim {s} vs analysis {a}");
    }
    // identical feasibility verdicts
    let sim_ok = trace.setup_violations().is_empty();
    assert_eq!(
        report.is_feasible(),
        sim_ok,
        "feasibility mismatch: analysis {:?} vs sim {:?}",
        report.violations(),
        trace.violations()
    );
    // and identical culprits: every statically-violating latch also misses
    // setup dynamically in the final wave
    for v in report.violations() {
        if let Violation::Setup { latch, .. } = v {
            assert!(
                trace
                    .violations()
                    .iter()
                    .any(|sv| matches!(sv, SimViolation::Setup { latch: l, .. } if l == latch)),
                "latch {latch} flagged statically but not dynamically"
            );
        }
    }
}

#[test]
fn hold_checks_agree_between_static_and_dynamic() {
    use smo::circuit::{CircuitBuilder, Synchronizer};
    let p1 = PhaseId::from_number(1);
    for min_delay in [0.2, 0.5, 0.9, 1.5, 3.0] {
        let mut b = CircuitBuilder::new(1);
        let f1 = b.add_flip_flop("src", p1, 0.3, 0.4);
        let f2 = b.add_sync(Synchronizer::flip_flop("dst", p1, 0.3, 0.4).with_hold(1.2));
        b.connect_min_max(f1, f2, min_delay, 6.0);
        let circuit = b.build().expect("builds");
        let sched = ClockSchedule::new(10.0, vec![0.0], vec![4.0]).expect("valid");
        let opts = AnalysisOptions {
            check_hold: true,
            ..Default::default()
        };
        let static_ok = verify_with(&circuit, &sched, &opts)
            .violations()
            .iter()
            .all(|v| !matches!(v, Violation::Hold { .. }));
        let trace = simulate(
            &circuit,
            &sched,
            &SimOptions {
                check_hold: true,
                ..Default::default()
            },
        );
        let dynamic_ok = trace.hold_violations().is_empty();
        assert_eq!(
            static_ok, dynamic_ok,
            "min_delay = {min_delay}: static {static_ok} vs dynamic {dynamic_ok}"
        );
        // the decision flips exactly at dq + δ = hold → δ = 0.8
        assert_eq!(static_ok, min_delay + 0.4 >= 1.2 - 1e-9);
    }
}

#[test]
fn simulation_reaches_steady_state_quickly_on_feasible_schedules() {
    for circuit in [paper::example1(80.0), paper::gaas_mips()] {
        let sol = min_cycle_time(&circuit).expect("solves");
        let trace = simulate(&circuit, sol.schedule(), &SimOptions::default());
        let at = trace.converged_at().expect("converges");
        assert!(
            at <= circuit.num_syncs() + 1,
            "convergence within l+1 waves, got {at}"
        );
    }
}

#[test]
fn early_mode_analysis_matches_simulated_early_changes() {
    use smo::circuit::{CircuitBuilder, Synchronizer};
    use smo::timing::PropagationSystem;
    // Mixed FF/latch chain with real contamination delays.
    let p1 = PhaseId::from_number(1);
    let p2 = PhaseId::from_number(2);
    let mut b = CircuitBuilder::new(2);
    let f = b.add_flip_flop("F", p1, 0.5, 0.5);
    let a = b.add_sync(Synchronizer::latch("A", p2, 0.5, 0.5));
    let d = b.add_sync(Synchronizer::latch("D", p1, 0.5, 0.5).with_hold(1.0));
    b.connect_min_max(f, a, 10.5, 11.0);
    b.connect_min_max(a, d, 0.5, 3.0);
    b.connect_min_max(d, f, 1.0, 4.0);
    let circuit = b.build().expect("builds");
    let sol = min_cycle_time(&circuit).expect("solves");
    // widen the schedule so steady state is comfortably reached
    let sched = sol.schedule().scaled(1.2);

    // analytical early changes
    let system = PropagationSystem::new(&circuit, &sched);
    let analytic = system.early_steady(circuit.num_syncs() + 1);
    assert!(analytic.converged);

    // simulated early changes (last wave)
    let trace = simulate(
        &circuit,
        &sched,
        &SimOptions {
            check_hold: true,
            ..Default::default()
        },
    );
    assert!(trace.converged());
    let last = trace.waves() - 1;
    for (i, &e) in analytic.departures.iter().enumerate() {
        let sim = trace.early_change(last, smo::circuit::LatchId::new(i));
        assert!(
            (sim - e).abs() < 1e-9 || (sim.is_infinite() && e.is_infinite()),
            "latch {i}: sim {sim} vs analytic {e}"
        );
    }

    // and the hold verdicts agree between early-mode static and dynamic
    let report = verify_with(
        &circuit,
        &sched,
        &AnalysisOptions {
            check_hold: true,
            early_mode_hold: true,
            ..Default::default()
        },
    );
    let static_ok = report
        .violations()
        .iter()
        .all(|v| !matches!(v, Violation::Hold { .. }));
    assert_eq!(static_ok, trace.hold_violations().is_empty());
}
