//! Pricing-equivalence suite: the sparse-LU simplex must return the same
//! verdict and the same optimum under every pricing strategy.
//!
//! Devex, candidate-list (partial) devex, and Bland pricing choose
//! *different pivot sequences*, but each one terminates only at a basis
//! whose reduced costs all pass the optimality test — so the certified
//! cycle time must agree to [`Tol::TIGHT`] on every circuit we can throw
//! at it: the paper's shipped examples, the pathological stress suite,
//! and randomized circuits. This is the contract that lets `--pricing`
//! default to `partial` without anyone auditing verdicts: the flag may
//! change the route, never the destination.

use proptest::prelude::*;
use smo::gen::random::{random_circuit, GenConfig};
use smo::gen::{paper, stress};
use smo::lp::{Pricing, SimplexVariant, Tol};
use smo::prelude::*;
use smo::timing::{min_cycle_time_with, MlpOptions};

/// Certified sparse-LU solve under one pricing strategy.
fn priced_tc(circuit: &Circuit, pricing: Pricing) -> f64 {
    let options = MlpOptions {
        simplex: SimplexVariant::SparseLu,
        certify: true,
        pricing,
        ..Default::default()
    };
    let solution =
        min_cycle_time_with(circuit, &options).expect("circuit solves under every pricing");
    assert!(
        solution.certified(),
        "{pricing} solve did not certify: {:?}",
        solution.certificates()
    );
    solution.cycle_time()
}

/// Solves under all three pricings and asserts the optima agree.
fn assert_pricing_equivalent(name: &str, circuit: &Circuit) {
    let reference = priced_tc(circuit, Pricing::Devex);
    for pricing in Pricing::ALL {
        let tc = priced_tc(circuit, pricing);
        assert!(
            Tol::TIGHT.is_zero(tc - reference, reference.abs().max(1.0)),
            "{name}: {pricing} found Tc = {tc}, devex found {reference}"
        );
    }
}

#[test]
fn shipped_circuits_agree_under_every_pricing() {
    assert_pricing_equivalent("example1", &paper::example1(80.0));
    assert_pricing_equivalent("example2", &paper::example2());
    assert_pricing_equivalent("gaas_mips", &paper::gaas_mips());
}

#[test]
fn example1_headline_number_survives_every_pricing() {
    // Tc* = 110 ns at Δ41 = 80 ns is the paper's Fig. 6 headline; the
    // pricing rule must not perturb it even in the last decimal.
    for pricing in Pricing::ALL {
        let tc = priced_tc(&paper::example1(80.0), pricing);
        assert!(
            (tc - 110.0).abs() < 1e-6,
            "{pricing}: Tc = {tc}, expected 110"
        );
    }
}

#[test]
fn stress_suite_agrees_under_every_pricing() {
    for seed in 0..3u64 {
        for (name, circuit) in stress::suite(seed) {
            assert_pricing_equivalent(&format!("{name} (seed {seed})"), &circuit);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random circuits: all three pricings certify the same optimum.
    #[test]
    fn prop_random_circuits_agree_under_every_pricing(
        seed in 0u64..10_000,
        latches in 4usize..40,
    ) {
        let config = GenConfig {
            latches,
            edges: latches * 2,
            ..Default::default()
        };
        let circuit = random_circuit(&config, seed);
        let reference = priced_tc(&circuit, Pricing::Devex);
        for pricing in Pricing::ALL {
            let tc = priced_tc(&circuit, pricing);
            prop_assert!(
                Tol::TIGHT.is_zero(tc - reference, reference.abs().max(1.0)),
                "seed {seed}, {latches} latches: {pricing} Tc = {tc}, devex {reference}"
            );
        }
    }
}
