//! Property-based tests (proptest) on the core invariants of the SMO
//! engine, exercised through randomly generated circuits.

mod common;

use proptest::prelude::*;
use smo::circuit::{netlist, CircuitBuilder, PhaseId, Synchronizer};
use smo::gen::random::{random_circuit, GenConfig};
use smo::prelude::*;
use smo::timing::{baseline, TimingModel};

/// Strategy: a small random circuit described by plain data (so shrinking
/// works naturally).
#[derive(Debug, Clone)]
struct Spec {
    phases: usize,
    syncs: Vec<(usize, f64, f64, bool)>, // (phase idx, setup, dq_extra, is_ff)
    edges: Vec<(usize, usize, f64)>,     // (from, to, delay)
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (2usize..=4, 2usize..=8).prop_flat_map(|(phases, n)| {
        let sync = (
            0..phases,
            0.1f64..5.0,
            0.0f64..5.0,
            proptest::bool::weighted(0.2),
        );
        let edge = (0..n, 0..n, 0.0f64..60.0);
        (
            Just(phases),
            proptest::collection::vec(sync, n..=n),
            proptest::collection::vec(edge, 1..=2 * n),
        )
            .prop_map(|(phases, syncs, edges)| Spec {
                phases,
                syncs,
                edges,
            })
    })
}

fn build(spec: &Spec) -> smo::circuit::Circuit {
    let mut b = CircuitBuilder::new(spec.phases);
    let ids: Vec<_> = spec
        .syncs
        .iter()
        .enumerate()
        .map(|(i, &(ph, setup, dq_extra, is_ff))| {
            let phase = PhaseId::new(ph);
            let name = format!("S{i}");
            if is_ff {
                b.add_sync(Synchronizer::flip_flop(name, phase, setup, dq_extra))
            } else {
                b.add_sync(Synchronizer::latch(name, phase, setup, setup + dq_extra))
            }
        })
        .collect();
    for &(f, t, d) in &spec.edges {
        if f != t {
            b.connect(ids[f], ids[t], d);
        }
    }
    b.build().expect("specs are valid by construction")
}

fn scaled_circuit(spec: &Spec, factor: f64) -> smo::circuit::Circuit {
    let mut s = spec.clone();
    for sync in &mut s.syncs {
        sync.1 *= factor;
        sync.2 *= factor;
    }
    for e in &mut s.edges {
        e.2 *= factor;
    }
    build(&s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The MLP result always verifies (soundness of Theorem 1).
    #[test]
    fn prop_mlp_schedule_verifies(spec in spec_strategy()) {
        let circuit = build(&spec);
        let sol = min_cycle_time(&circuit).expect("always feasible");
        let report = verify(&circuit, sol.schedule());
        prop_assert!(report.is_feasible(), "{:?}", report.violations());
    }

    /// Increasing a combinational delay can never *decrease* the optimum.
    /// The re-solve warm-starts from the base optimal basis (a delay bump
    /// is an RHS-only edit), so this doubles as a warm-start differential.
    #[test]
    fn prop_tc_monotone_in_delays(spec in spec_strategy(), extra in 0.1f64..40.0, which in 0usize..64) {
        prop_assume!(!spec.edges.is_empty());
        let (base, basis) = common::min_tc_checked(&build(&spec), None);
        let mut bumped = spec.clone();
        let idx = which % bumped.edges.len();
        bumped.edges[idx].2 += extra;
        let (after, _) = common::min_tc_checked(&build(&bumped), Some(&basis));
        prop_assert!(after >= base - 1e-6, "delay bump reduced Tc: {base} → {after}");
    }

    /// Scaling every delay parameter by λ scales the optimum by λ. Like the
    /// monotonicity test, the scaled circuit re-solves through the basis of
    /// the unscaled optimum (scaling touches only RHS data).
    #[test]
    fn prop_tc_scales_linearly(spec in spec_strategy(), lambda in 0.25f64..4.0) {
        let (base, basis) = common::min_tc_checked(&build(&spec), None);
        let (scaled, _) = common::min_tc_checked(&scaled_circuit(&spec, lambda), Some(&basis));
        prop_assert!((scaled - lambda * base).abs() < 1e-6 * (1.0 + base),
            "Tc({lambda}·C) = {scaled} but λ·Tc(C) = {}", lambda * base);
    }

    /// Every baseline is an upper bound on the optimum and produces a
    /// schedule that verifies against the real circuit.
    #[test]
    fn prop_baselines_are_feasible_upper_bounds(spec in spec_strategy()) {
        let circuit = build(&spec);
        let opt = min_cycle_time(&circuit).expect("solves").cycle_time();
        for b in baseline::all_baselines(&circuit).expect("baselines run") {
            prop_assert!(b.cycle_time() >= opt - 1e-6, "{} beat the optimum", b.name);
            let report = verify(&circuit, b.solution.schedule());
            prop_assert!(report.is_feasible(), "{}: {:?}", b.name, report.violations());
        }
    }

    /// Netlist write→parse is the identity on circuits.
    #[test]
    fn prop_netlist_round_trips(spec in spec_strategy()) {
        let circuit = build(&spec);
        let text = netlist::write(&circuit);
        let again = netlist::parse(&text).expect("own output parses");
        prop_assert_eq!(circuit, again);
    }

    /// The canonical schedule is itself optimal: re-solving with the
    /// canonical Tc fixed stays feasible, and any uniform shrink fails.
    #[test]
    fn prop_canonical_schedule_is_minimal(spec in spec_strategy()) {
        let circuit = build(&spec);
        let sol = min_cycle_time(&circuit).expect("solves");
        prop_assume!(sol.cycle_time() > 1e-6);
        let shrunk = sol.schedule().scaled(0.999);
        prop_assert!(!verify(&circuit, &shrunk).is_feasible());
    }

    /// Departure variables at the LP optimum dominate the slid fixpoint
    /// (the MLP update only moves departures toward the origin).
    #[test]
    fn prop_update_only_slides_down(spec in spec_strategy()) {
        let circuit = build(&spec);
        let model = TimingModel::build(&circuit).expect("model");
        let lp = model.solve_lp().expect("optimal");
        let d0 = model.extract_departures(&lp);
        let sol = smo::timing::solve_model(&circuit, &model, smo::timing::UpdateMode::Jacobi)
            .expect("solves");
        for (slid, initial) in sol.departures().iter().zip(&d0) {
            prop_assert!(*slid <= initial + 1e-7, "slide increased a departure");
        }
    }

    /// Random circuits honour the rigorous constraint-count bound.
    #[test]
    fn prop_constraint_count_bound(seed in 0u64..500) {
        let cfg = GenConfig {
            phases: 2 + (seed as usize % 3),
            latches: 4 + (seed as usize % 20),
            edges: 6 + (seed as usize % 30),
            flip_flop_prob: 0.15,
            ..Default::default()
        };
        let circuit = random_circuit(&cfg, seed);
        let model = TimingModel::build(&circuit).expect("model");
        let k = circuit.num_phases();
        let bound = (3 * k - 1 + k * k) + (circuit.max_fanin() + 1) * circuit.num_syncs();
        prop_assert!(model.num_constraints() <= bound);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dense and revised simplex produce the same optimal cycle time on
    /// random circuits (full MLP pipeline both times).
    #[test]
    fn prop_simplex_variants_agree_on_circuits(spec in spec_strategy()) {
        use smo::lp::SimplexVariant;
        use smo::timing::MlpOptions;
        let circuit = build(&spec);
        let dense = min_cycle_time(&circuit).expect("dense solves").cycle_time();
        let revised = smo::timing::min_cycle_time_with(
            &circuit,
            &MlpOptions {
                simplex: SimplexVariant::Revised,
                ..Default::default()
            },
        )
        .expect("revised solves")
        .cycle_time();
        prop_assert!(
            (dense - revised).abs() < 1e-6 * (1.0 + dense),
            "dense {dense} vs revised {revised}"
        );
    }

    /// Merging parallel edges and lumping equivalent latches preserve the
    /// optimal cycle time.
    #[test]
    fn prop_transforms_preserve_optimum(spec in spec_strategy()) {
        use smo::circuit::{lump_equivalent_latches, merge_parallel_edges};
        let circuit = build(&spec);
        let base = min_cycle_time(&circuit).expect("solves").cycle_time();
        let merged = merge_parallel_edges(&circuit);
        let tc_merged = min_cycle_time(&merged).expect("solves").cycle_time();
        prop_assert!((base - tc_merged).abs() < 1e-6 * (1.0 + base));
        let (lumped, _) = lump_equivalent_latches(&merged);
        let tc_lumped = min_cycle_time(&lumped).expect("solves").cycle_time();
        prop_assert!((base - tc_lumped).abs() < 1e-6 * (1.0 + base));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Presolve preserves the optimal objective: solving through the
    /// presolve pipeline returns the same cycle time as the plain solve,
    /// for both simplex variants.
    #[test]
    fn prop_presolve_preserves_objective(spec in spec_strategy()) {
        use smo::lp::{PresolveOptions, SimplexVariant};
        let circuit = build(&spec);
        let model = TimingModel::build(&circuit).expect("model");
        let plain = model.solve_lp().expect("optimal").objective();
        for variant in [SimplexVariant::Dense, SimplexVariant::Revised] {
            let pre = model
                .problem()
                .solve_with_presolve(variant, &PresolveOptions::default())
                .expect("solves")
                .objective()
                .expect("optimal");
            prop_assert!(
                (pre - plain).abs() <= 1e-9 * (1.0 + plain.abs()),
                "{variant:?}: presolved {pre} vs plain {plain}"
            );
        }
    }

    /// Presolve preserves the feasibility verdict: a circuit made
    /// infeasible by an impossible cycle-time cap is reported infeasible
    /// through the presolve pipeline too (with a Farkas certificate on the
    /// original rows).
    #[test]
    fn prop_presolve_preserves_infeasible_verdict(spec in spec_strategy()) {
        use smo::lp::{certifies_infeasibility, PresolveOptions, SimplexVariant, Status};
        use smo::timing::ConstraintOptions;
        let circuit = build(&spec);
        let free = TimingModel::build(&circuit)
            .expect("model")
            .solve_lp()
            .expect("plain SMO model is feasible")
            .objective();
        prop_assume!(free > 1e-6);
        let opts = ConstraintOptions { max_cycle: Some(0.8 * free), ..Default::default() };
        let model = TimingModel::build_with(&circuit, &opts).expect("model");
        let p = model.problem();
        let sol = p
            .solve_with_presolve(SimplexVariant::Dense, &PresolveOptions::default())
            .expect("solver runs");
        prop_assert_eq!(sol.status(), Status::Infeasible);
        let y = sol.farkas().expect("certificate");
        prop_assert!(certifies_infeasibility(p, y));
    }

    /// The combinatorial bracket contains the LP optimum on random
    /// circuits: MMC lower bound ≤ Tc* ≤ flip-flop-style upper bound.
    #[test]
    fn prop_bounds_bracket_the_lp_optimum(spec in spec_strategy()) {
        use smo::timing::cycle_time_bounds;
        let circuit = build(&spec);
        let bounds = cycle_time_bounds(&circuit);
        prop_assert!(bounds.lower <= bounds.upper + 1e-9, "{bounds:?}");
        let tc = TimingModel::build(&circuit)
            .expect("model")
            .solve_lp()
            .expect("optimal")
            .objective();
        prop_assert!(
            bounds.brackets(tc),
            "Tc {} outside [{}, {}]", tc, bounds.lower, bounds.upper
        );
    }

    /// Same bracket property on the generator-produced circuits (denser,
    /// flip-flop-rich, multi-phase).
    #[test]
    fn prop_bounds_bracket_generated_circuits(seed in 0u64..300) {
        use smo::timing::cycle_time_bounds;
        let cfg = GenConfig {
            phases: 2 + (seed as usize % 3),
            latches: 4 + (seed as usize % 16),
            edges: 6 + (seed as usize % 24),
            flip_flop_prob: 0.2,
            ..Default::default()
        };
        let circuit = random_circuit(&cfg, seed);
        let bounds = cycle_time_bounds(&circuit);
        let tc = TimingModel::build(&circuit)
            .expect("model")
            .solve_lp()
            .expect("optimal")
            .objective();
        prop_assert!(
            bounds.brackets(tc),
            "seed {}: Tc {} outside [{}, {}]", seed, tc, bounds.lower, bounds.upper
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The netlist parsers never panic: arbitrary input either parses or
    /// returns a structured error.
    #[test]
    fn prop_netlist_parsers_never_panic(src in "\\PC{0,300}") {
        let _ = netlist::parse(&src);
        let _ = netlist::parse_gates(&src);
    }

    /// Fully arbitrary byte strings — including control characters and
    /// invalid UTF-8 sequences (lossily decoded, as the daemon does with
    /// untrusted request payloads) — never panic either parser, and
    /// oversized inputs come back as the structured `InputLimit` error.
    #[test]
    fn prop_arbitrary_bytes_never_panic_the_parsers(
        bytes in proptest::collection::vec(0u8..=255u8, 0..2048)
    ) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = netlist::parse(&src);
        let _ = netlist::parse_gates(&src);
        // A hostile caller cannot dodge the limits by shrinking them.
        let tiny = netlist::ParseLimits {
            max_bytes: 8,
            ..Default::default()
        };
        if src.len() > 8 {
            let limited = matches!(
                netlist::parse_with_limits(&src, &tiny),
                Err(smo::circuit::CircuitError::InputLimit { .. })
            );
            prop_assert!(limited);
        }
    }

    /// Keyword soup built from the format's own vocabulary also never
    /// panics (deeper coverage than fully random bytes).
    #[test]
    fn prop_netlist_keyword_soup_never_panics(
        words in proptest::collection::vec(
            proptest::sample::select(vec![
                "clock", "latch", "ff", "path", "gate", "wire", "A", "B", "2",
                "phase=1", "phase=9", "setup=1", "dq=2", "delay=5", "min=1",
                "max=3", "hold=0.5", "#x", "\n", "=", "-1", "nan",
            ]),
            0..60,
        )
    ) {
        let src = words.join(" ");
        let _ = netlist::parse(&src);
        let _ = netlist::parse_gates(&src);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Gate-level extraction equals brute-force path enumeration on random
    /// layered DAGs between two latches.
    #[test]
    fn prop_gate_extraction_matches_bruteforce(
        layers in proptest::collection::vec(1usize..4, 1..4),
        delays in proptest::collection::vec((0.5f64..5.0, 0.0f64..3.0), 12),
        wiring in proptest::collection::vec(proptest::bool::weighted(0.7), 64),
    ) {
        use smo::circuit::gates::GateNetlistBuilder;
        let mut g = GateNetlistBuilder::new(2);
        let src = g.add_latch("src", PhaseId::from_number(1), 1.0, 1.0);
        let dst = g.add_latch("dst", PhaseId::from_number(2), 1.0, 1.0);
        // build layered gates; gate i in layer L connects from every chosen
        // node of layer L−1 (or the source latch)
        let mut gate_delay = Vec::new(); // (min, max) per gate node index
        let mut node_layers: Vec<Vec<_>> = vec![vec![src]];
        let mut di = 0;
        let mut wi = 0;
        for (li, &width) in layers.iter().enumerate() {
            let mut layer = Vec::new();
            for j in 0..width {
                let (a, b) = delays[di % delays.len()];
                di += 1;
                let node = g.add_gate(format!("g{li}_{j}"), a.min(a + b), a + b);
                gate_delay.push((node, a.min(a + b), a + b));
                // wire from the previous layer
                let mut any = false;
                for &prev in &node_layers[li] {
                    let take = wiring[wi % wiring.len()];
                    wi += 1;
                    if take {
                        g.wire(prev, node).expect("valid");
                        any = true;
                    }
                }
                if !any {
                    g.wire(node_layers[li][0], node).expect("valid");
                }
                layer.push(node);
            }
            node_layers.push(layer);
        }
        for &n in node_layers.last().expect("non-empty") {
            g.wire(n, dst).expect("valid");
        }
        let circuit = g.extract().expect("extracts");

        // brute force: enumerate all layer-respecting paths
        // path delays: DFS over the same layered structure
        fn paths(
            layers: &[Vec<(f64, f64)>],
            conn: &dyn Fn(usize, usize, usize) -> bool,
        ) -> Vec<(f64, f64)> {
            // returns (max, min) accumulations per node of the last layer
            let mut acc: Vec<Vec<Option<(f64, f64)>>> =
                vec![vec![Some((0.0, 0.0))]];
            for (li, layer) in layers.iter().enumerate() {
                let mut next = Vec::new();
                for (j, &(mn, mx)) in layer.iter().enumerate() {
                    let mut best: Option<(f64, f64)> = None;
                    for (pi, p) in acc[li].iter().enumerate() {
                        if let Some((pmx, pmn)) = p {
                            if conn(li, pi, j) {
                                let cand = (pmx + mx, pmn + mn);
                                best = Some(match best {
                                    None => cand,
                                    Some((bmx, bmn)) => (bmx.max(cand.0), bmn.min(cand.1)),
                                });
                            }
                        }
                    }
                    next.push(best);
                }
                acc.push(next);
            }
            acc.last().expect("non-empty").iter().flatten().copied().collect()
        }
        // reconstruct connectivity decisions exactly as made above
        let mut decisions = std::collections::HashMap::new();
        {
            let mut wi2 = 0usize;
            for (li, &width) in layers.iter().enumerate() {
                let prev_count = if li == 0 { 1 } else { layers[li - 1] };
                for j in 0..width {
                    let mut any = false;
                    for pi in 0..prev_count {
                        let take = wiring[wi2 % wiring.len()];
                        wi2 += 1;
                        decisions.insert((li, pi, j), take);
                        any |= take;
                    }
                    if !any {
                        decisions.insert((li, 0, j), true);
                    }
                }
            }
        }
        let layer_delays: Vec<Vec<(f64, f64)>> = {
            let mut di2 = 0usize;
            layers
                .iter()
                .map(|&w| {
                    (0..w)
                        .map(|_| {
                            let (a, b) = delays[di2 % delays.len()];
                            di2 += 1;
                            (a.min(a + b), a + b)
                        })
                        .collect()
                })
                .collect()
        };
        let per_last = paths(&layer_delays, &|li, pi, j| {
            *decisions.get(&(li, pi, j)).unwrap_or(&false)
        });
        prop_assume!(!per_last.is_empty());
        let want_max = per_last.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        let want_min = per_last.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);

        let edge = circuit
            .edges()
            .iter()
            .find(|e| e.from != e.to)
            .expect("src→dst edge");
        prop_assert!((edge.max_delay - want_max).abs() < 1e-9,
            "max: extracted {} vs brute {}", edge.max_delay, want_max);
        prop_assert!((edge.min_delay - want_min).abs() < 1e-9,
            "min: extracted {} vs brute {}", edge.min_delay, want_min);
    }
}
