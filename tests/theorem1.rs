//! Theorem 1 in executable form: the LP relaxation P2 and the nonlinear
//! problem P1 have the same optimal cycle time.
//!
//! For a family of random circuits we check both directions:
//!
//! * **soundness** — the MLP result (schedule + slid departures) satisfies
//!   every *nonlinear* constraint of P1, verified by the independent
//!   fixpoint analysis and the behavioural simulator;
//! * **optimality** — no feasible schedule found by an adversarial search
//!   (random shapes bisected to their minimum feasible scaling) beats the
//!   MLP cycle time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smo::gen::random::{multi_loop, random_circuit, ring, tree, GenConfig};
use smo::prelude::*;
use smo::sim::{simulate, SimOptions};
use smo::timing::min_cycle_for_shape;

fn circuits() -> Vec<smo::circuit::Circuit> {
    let mut out = Vec::new();
    for seed in 0..8u64 {
        out.push(random_circuit(
            &GenConfig {
                phases: 2 + (seed as usize % 3),
                latches: 6 + 2 * seed as usize,
                edges: 10 + 3 * seed as usize,
                ..Default::default()
            },
            seed,
        ));
    }
    out.push(ring(10, 2, 3));
    out.push(ring(9, 3, 4));
    out.push(tree(3, 2, 5));
    out.push(multi_loop(4, 3, 6));
    out
}

#[test]
fn mlp_results_are_feasible_for_p1() {
    for (i, circuit) in circuits().iter().enumerate() {
        let sol = min_cycle_time(circuit).unwrap_or_else(|e| panic!("circuit {i}: {e}"));
        // independent fixpoint analysis accepts the schedule
        let report = verify(circuit, sol.schedule());
        assert!(
            report.is_feasible(),
            "circuit {i}: {:?}",
            report.violations()
        );
        // and the analytical departures match the verified least fixpoint
        for (a, b) in sol.departures().iter().zip(report.departures()) {
            assert!((a - b).abs() < 1e-6, "circuit {i}: {a} vs {b}");
        }
        // and the behavioural simulator agrees, with no dynamic violations
        let trace = simulate(circuit, sol.schedule(), &SimOptions::default());
        assert!(trace.converged(), "circuit {i}");
        assert!(trace.violations().is_empty(), "circuit {i}");
        for (a, b) in trace.steady_departures().iter().zip(sol.departures()) {
            assert!((a - b).abs() < 1e-6, "circuit {i}: sim {a} vs mlp {b}");
        }
    }
}

#[test]
fn no_random_feasible_schedule_beats_mlp() {
    let mut rng = StdRng::seed_from_u64(99);
    for (i, circuit) in circuits().iter().enumerate() {
        let opt = min_cycle_time(circuit).expect("solves").cycle_time();
        let k = circuit.num_phases();
        // adversarial search: 12 random schedule shapes, each bisected down
        // to its minimum feasible uniform scaling
        for attempt in 0..12 {
            let mut starts: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..1.0)).collect();
            starts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let widths: Vec<f64> = (0..k).map(|_| rng.gen_range(0.05..0.9)).collect();
            let Ok(shape) = smo::circuit::ClockSchedule::new(1.0, starts, widths) else {
                continue;
            };
            let Some(best) = min_cycle_for_shape(circuit, &shape, 100.0 * opt.max(1.0), 1e-7)
            else {
                continue; // this shape never becomes feasible
            };
            assert!(
                best.cycle() >= opt - 1e-4,
                "circuit {i}, attempt {attempt}: shape reached {} < optimum {opt}",
                best.cycle()
            );
        }
    }
}

#[test]
fn shrinking_the_optimal_schedule_always_breaks_it() {
    for (i, circuit) in circuits().iter().enumerate() {
        let sol = min_cycle_time(circuit).expect("solves");
        if sol.cycle_time() == 0.0 {
            continue; // degenerate empty-delay circuit
        }
        let shrunk = sol.schedule().scaled(1.0 - 1e-3);
        let report = verify(circuit, &shrunk);
        // Scaling the whole schedule preserves its *shape*; the shape was
        // bisection-minimal only if verify now fails **or** the optimum is
        // set by a non-scaling constraint. The strong claim that holds
        // universally: no schedule with cycle < Tc* exists, so the shrunk
        // schedule — whose cycle is below Tc* — must be infeasible.
        assert!(
            !report.is_feasible(),
            "circuit {i}: shrunk schedule should violate something"
        );
    }
}
