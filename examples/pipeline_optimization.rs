//! Domain scenario: clocking a pipelined datapath.
//!
//! A designer has a six-stage pipeline with a feedback loop and wants to
//! know (a) the best cycle time for 2-, 3- and 4-phase clocking, (b) how
//! much realistic clock-generation constraints (minimum phase width,
//! minimum separation, skew margin) cost, and (c) which combinational
//! blocks to optimize next.
//!
//! Run with `cargo run --example pipeline_optimization`.

use smo::gen::random::pipeline;
use smo::timing::{
    critical_report, min_cycle_time, min_cycle_time_with, ConstraintOptions, MlpOptions,
    TimingModel,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // (a) phase-count exploration on the same six-stage loop
    println!("phase-count exploration (same pipeline, seeded delays):");
    for k in [2usize, 3, 4] {
        let circuit = pipeline(k, 6, true, 42);
        let sol = min_cycle_time(&circuit)?;
        println!("  {k}-phase clock: Tc = {:.2}", sol.cycle_time());
    }

    // (b) the cost of realistic clock-generation constraints
    let circuit = pipeline(2, 6, true, 42);
    let free = min_cycle_time(&circuit)?.cycle_time();
    println!("\nconstraint cost on the 2-phase pipeline (free optimum {free:.2}):");
    for (label, opts) in [
        (
            "min phase width 10",
            ConstraintOptions {
                min_phase_width: 10.0,
                ..Default::default()
            },
        ),
        (
            "min separation 5",
            ConstraintOptions {
                min_separation: 5.0,
                ..Default::default()
            },
        ),
        (
            "setup margin 3 (skew)",
            ConstraintOptions {
                setup_margin: 3.0,
                ..Default::default()
            },
        ),
    ] {
        let sol = min_cycle_time_with(
            &circuit,
            &MlpOptions {
                constraints: opts,
                ..Default::default()
            },
        )?;
        println!(
            "  {label:22}: Tc = {:.2}  (+{:.1}%)",
            sol.cycle_time(),
            (sol.cycle_time() / free - 1.0) * 100.0
        );
    }

    // (c) what to optimize: critical segments and their sensitivities
    println!("\ncritical combinational delays (dTc/dΔ from LP duals):");
    let model = TimingModel::build(&circuit)?;
    let report = critical_report(&circuit, &model)?;
    for ce in &report.edges {
        let e = circuit.edge(ce.edge);
        println!(
            "  {} → {} (Δ = {:.1}): shaving 1 ns here buys {:.2} ns of cycle time",
            circuit.sync(e.from).name,
            circuit.sync(e.to).name,
            e.max_delay,
            ce.sensitivity
        );
    }
    if report.edges.is_empty() {
        println!("  (none — the cycle time is set by setup/width constraints)");
    }
    Ok(())
}
