//! Quickstart: find the optimal cycle time of a small latch-controlled
//! circuit, inspect the schedule, and verify it.
//!
//! Run with `cargo run --example quickstart`.

use smo::prelude::*;
use smo::timing::render_solution;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Example 1 (Fig. 5): four level-sensitive latches in a
    // loop under a two-phase clock. Setup and latch delays are 10 ns; the
    // combinational blocks are 20/20/60/80 ns.
    let p1 = PhaseId::from_number(1);
    let p2 = PhaseId::from_number(2);
    let mut builder = CircuitBuilder::new(2);
    let l1 = builder.add_latch("L1", p1, 10.0, 10.0);
    let l2 = builder.add_latch("L2", p2, 10.0, 10.0);
    let l3 = builder.add_latch("L3", p1, 10.0, 10.0);
    let l4 = builder.add_latch("L4", p2, 10.0, 10.0);
    builder.connect(l1, l2, 20.0);
    builder.connect(l2, l3, 20.0);
    builder.connect(l3, l4, 60.0);
    builder.connect(l4, l1, 80.0);
    let circuit = builder.build()?;

    // The design problem: minimum cycle time over all clock schedules
    // (Algorithm MLP — exact, not a heuristic).
    let solution = min_cycle_time(&circuit)?;
    println!("optimal cycle time: {:.1} ns", solution.cycle_time());
    println!("{}", render_solution(&circuit, &solution));

    // The analysis problem: check an arbitrary schedule.
    let report = verify(&circuit, solution.schedule());
    println!("optimal schedule feasible: {}", report.is_feasible());
    println!("worst setup slack: {:.3} ns", report.worst_slack());

    // A 5 % faster clock cannot work — and the report says why.
    let too_fast = solution.schedule().scaled(0.95);
    let report = verify(&circuit, &too_fast);
    println!("\nat 95% of the optimum:");
    for v in report.violations() {
        println!("  {v}");
    }
    Ok(())
}
