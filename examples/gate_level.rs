//! Gate-level entry: describe a design as gates and wires, let the front
//! end compute the latch-to-latch delays (the decomposition the paper
//! assumes has already happened), then optimize the clock.
//!
//! Run with `cargo run --example gate_level`.

use smo::circuit::netlist;
use smo::timing::{min_cycle_time, render_solution, verify_with, AnalysisOptions};

const GATE_NETLIST: &str = "\
# A tiny two-phase ALU bypass loop, gate by gate.
clock 2
latch opnd   phase=1 setup=0.4 dq=0.6
latch result phase=2 setup=0.4 dq=0.6 hold=0.8
gate  dec    min=0.5 max=1.1
gate  add    min=1.8 max=4.2
gate  mux    min=0.3 max=0.9
gate  fwd    min=0.6 max=1.4
wire  opnd dec
wire  dec add
wire  add mux
wire  opnd mux      # bypass: a fast path into the same mux
wire  mux result
wire  result fwd
wire  fwd opnd
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = netlist::parse_gates(GATE_NETLIST)?;
    println!("extracted latch graph:\n{circuit}");
    for e in circuit.edges() {
        println!(
            "  {} → {}: Δ = {} (longest gate path), δ = {} (shortest)",
            circuit.sync(e.from).name,
            circuit.sync(e.to).name,
            e.max_delay,
            e.min_delay
        );
    }

    let solution = min_cycle_time(&circuit)?;
    println!("\noptimal Tc = {:.2}", solution.cycle_time());
    print!("{}", render_solution(&circuit, &solution));

    // The bypass wire makes opnd→result fast (δ = 0.3 + mux min): check the
    // hold requirement on `result` with the early-mode analysis.
    let report = verify_with(
        &circuit,
        solution.schedule(),
        &AnalysisOptions {
            check_hold: true,
            early_mode_hold: true,
            ..Default::default()
        },
    );
    println!("setup feasible: {}", report.is_feasible());
    for (i, m) in report.hold_margins().iter().enumerate() {
        if let Some(m) = m {
            let e = circuit.edge(smo::circuit::EdgeId::new(i));
            println!(
                "hold margin {} → {}: {m:+.2}",
                circuit.sync(e.from).name,
                circuit.sync(e.to).name
            );
        }
    }
    Ok(())
}
