//! Working with netlist files: parse a circuit from the text format, solve
//! it, and write the (round-trippable) netlist back out.
//!
//! Run with `cargo run --example netlist_files`.

use smo::circuit::netlist;
use smo::timing::min_cycle_time;

const NETLIST: &str = "\
# a two-phase accumulator loop with a bypass path
clock 2
latch acc_in  phase=1 setup=2 dq=3
latch acc_out phase=2 setup=2 dq=3
latch bypass  phase=2 setup=2 dq=3
path acc_in  acc_out delay=25 min=4
path acc_out acc_in  delay=12 min=2
path acc_in  bypass  delay=8
path bypass  acc_in  delay=5
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = netlist::parse(NETLIST)?;
    println!("parsed: {circuit}");

    let solution = min_cycle_time(&circuit)?;
    println!("optimal Tc = {:.2}", solution.cycle_time());
    for (id, sync) in circuit.syncs() {
        println!(
            "  {:8} departs {:.2} after {} opens",
            sync.name,
            solution.departure(id),
            sync.phase
        );
    }

    // Round-trip: write → parse → identical circuit.
    let text = netlist::write(&circuit);
    let again = netlist::parse(&text)?;
    assert_eq!(circuit, again);
    println!("\nround-tripped netlist:\n{text}");
    Ok(())
}
