//! The paper's §IV scalability remark, made executable: "by lumping latches
//! corresponding to vector signals with similar timing (e.g., 32-bit data
//! buses), the number l can be reasonably small even for large circuits."
//!
//! This example builds a bit-exact 32-bit two-stage datapath (130
//! synchronizers), lumps the identical bit slices automatically, and shows
//! that the 6-synchronizer reduced model yields the same optimal cycle time
//! dramatically faster.
//!
//! Run with `cargo run --release --example bus_lumping`.

use smo::circuit::{lump_equivalent_latches, CircuitBuilder, PhaseId};
use smo::timing::min_cycle_time;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p1 = PhaseId::from_number(1);
    let p2 = PhaseId::from_number(2);

    // Bit-exact model: two pipeline registers of 32 latches each plus a
    // control loop, every bit wired identically.
    let mut b = CircuitBuilder::new(2);
    let ctrl_a = b.add_latch("ctrl_a", p1, 1.0, 1.0);
    let ctrl_b = b.add_latch("ctrl_b", p2, 1.0, 1.0);
    b.connect(ctrl_a, ctrl_b, 9.0);
    b.connect(ctrl_b, ctrl_a, 11.0);
    let stage1: Vec<_> = (0..32)
        .map(|i| b.add_latch(format!("r1_{i}"), p1, 1.0, 1.0))
        .collect();
    let stage2: Vec<_> = (0..32)
        .map(|i| b.add_latch(format!("r2_{i}"), p2, 1.0, 1.0))
        .collect();
    let merge_a = b.add_latch("merge_a", p1, 1.0, 1.0);
    let merge_b = b.add_latch("merge_b", p2, 1.0, 1.0);
    for i in 0..32 {
        b.connect(stage1[i], stage2[i], 14.0); // ALU bit slice
        b.connect(stage2[i], stage1[i], 6.0); // writeback bit slice
        b.connect(stage2[i], merge_a, 4.0); // reduction into flags
    }
    b.connect(merge_a, merge_b, 8.0);
    b.connect(merge_b, ctrl_a, 3.0);
    let full = b.build()?;
    println!(
        "bit-exact model: {} synchronizers, {} edges",
        full.num_syncs(),
        full.num_edges()
    );

    let t0 = Instant::now();
    let full_sol = min_cycle_time(&full)?;
    let full_time = t0.elapsed();
    println!(
        "  Tc = {:.3} in {:.1} ms ({} constraints)",
        full_sol.cycle_time(),
        full_time.as_secs_f64() * 1e3,
        full_sol.num_constraints()
    );

    let (lumped, map) = lump_equivalent_latches(&full);
    println!(
        "\nlumped model: {} synchronizers, {} edges (bit slices merged)",
        lumped.num_syncs(),
        lumped.num_edges()
    );
    let t1 = Instant::now();
    let lumped_sol = min_cycle_time(&lumped)?;
    let lumped_time = t1.elapsed();
    println!(
        "  Tc = {:.3} in {:.1} ms ({} constraints)",
        lumped_sol.cycle_time(),
        lumped_time.as_secs_f64() * 1e3,
        lumped_sol.num_constraints()
    );

    assert!((full_sol.cycle_time() - lumped_sol.cycle_time()).abs() < 1e-6);
    println!(
        "\nidentical optimal cycle time, {:.0}× faster",
        full_time.as_secs_f64() / lumped_time.as_secs_f64().max(1e-9)
    );

    // the mapping lets per-bit results be read off the representative
    let rep = map[full.find("r1_17").ok_or("missing")?.index()];
    println!(
        "bit r1_17 is represented by `{}` with departure {:.3}",
        lumped.sync(rep).name,
        lumped_sol.departure(rep)
    );
    Ok(())
}
