//! Advanced clocking features: overlapped phases, the nonoverlap-scope
//! ablation for flip-flop-rich designs, and short-path (hold) analysis.
//!
//! Run with `cargo run --example clock_exploration`.

use smo::circuit::{CircuitBuilder, PhaseId, Synchronizer};
use smo::timing::{
    min_cycle_time_with, verify_with, AnalysisOptions, ConstraintOptions, MlpOptions,
    NonoverlapScope,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p1 = PhaseId::from_number(1);
    let p2 = PhaseId::from_number(2);

    // A design where a latch feeds a flip-flop: under the paper's strict
    // C3 (every I/O phase pair nonoverlapping) φ2 must close before φ1
    // opens; the LatchDestinations extension drops that requirement for
    // the FF-bound edge because the FF breaks the race itself.
    let build = || -> Result<smo::circuit::Circuit, smo::circuit::CircuitError> {
        let mut b = CircuitBuilder::new(2);
        let l = b.add_latch("stage", p1, 1.0, 2.0);
        let f = b.add_flip_flop("reg", p2, 1.0, 1.0);
        b.connect(l, f, 20.0);
        b.connect(f, l, 8.0);
        b.build()
    };

    for (label, scope) in [
        ("paper C3 (all pairs)", NonoverlapScope::AllPairs),
        (
            "extension (latch destinations)",
            NonoverlapScope::LatchDestinations,
        ),
    ] {
        let circuit = build()?;
        let opts = MlpOptions {
            constraints: ConstraintOptions {
                nonoverlap_scope: scope,
                ..Default::default()
            },
            ..Default::default()
        };
        let sol = min_cycle_time_with(&circuit, &opts)?;
        println!("{label:32}: Tc = {:.2}", sol.cycle_time());
        // the analysis must be run with the matching scope
        let report = verify_with(
            &circuit,
            sol.schedule(),
            &AnalysisOptions {
                nonoverlap_scope: scope,
                ..Default::default()
            },
        );
        assert!(report.is_feasible());
    }

    // Short-path (hold) analysis: a fast feedback path with a demanding
    // hold requirement.
    println!("\nhold analysis (extension):");
    let mut b = CircuitBuilder::new(1);
    let f1 = b.add_flip_flop("src", p1, 0.5, 0.5);
    let f2 = b.add_sync(Synchronizer::flip_flop("dst", p1, 0.5, 0.5).with_hold(2.0));
    b.connect_min_max(f1, f2, 0.8, 6.0);
    let circuit = b.build()?;
    let sol = min_cycle_time_with(&circuit, &MlpOptions::default())?;
    let report = verify_with(
        &circuit,
        sol.schedule(),
        &AnalysisOptions {
            check_hold: true,
            ..Default::default()
        },
    );
    println!(
        "Tc = {:.2}, feasible for setup: {}",
        sol.cycle_time(),
        report.setup_slacks().iter().all(|s| *s >= 0.0)
    );
    for (i, m) in report.hold_margins().iter().enumerate() {
        if let Some(m) = m {
            println!(
                "  edge #{i}: hold margin {m:+.2} {}",
                if *m < 0.0 {
                    "← VIOLATED (add delay or reduce hold)"
                } else {
                    ""
                }
            );
        }
    }
    Ok(())
}
