//! The paper's flagship application (Example 3): optimal clocking of the
//! 250-MHz GaAs MIPS datapath model, cross-validated with the behavioural
//! simulator.
//!
//! Run with `cargo run --example gaas_datapath`.

use smo::gen::paper::{gaas_mips, GAAS_TARGET_CYCLE_NS};
use smo::sim::{simulate, SimOptions};
use smo::timing::{min_cycle_time, render_schedule, verify};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = gaas_mips();
    println!(
        "GaAs MIPS timing model: {} synchronizers, {} combinational paths",
        circuit.num_syncs(),
        circuit.num_edges()
    );

    let solution = min_cycle_time(&circuit)?;
    println!(
        "optimal Tc = {:.2} ns → {:.0} MHz (target {:.0} MHz)",
        solution.cycle_time(),
        1000.0 / solution.cycle_time(),
        1000.0 / GAAS_TARGET_CYCLE_NS
    );
    print!("{}", render_schedule(solution.schedule()));

    // Static verification…
    let report = verify(&circuit, solution.schedule());
    println!("static analysis feasible: {}", report.is_feasible());

    // …and dynamic confirmation: simulate 32 clock cycles and compare the
    // simulated steady-state departures against the analytical ones.
    let trace = simulate(&circuit, solution.schedule(), &SimOptions::default());
    println!(
        "simulation: {} waves, converged at wave {:?}, {} violations",
        trace.waves(),
        trace.converged_at(),
        trace.violations().len()
    );
    let sim = trace.steady_departures();
    let max_diff = sim
        .iter()
        .zip(solution.departures())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max)
        .max(0.0);
    println!("max |simulated − analytical| departure: {max_diff:.2e} ns");
    assert!(max_diff < 1e-9, "simulator must agree with the analysis");

    // What would the target 4 ns need? Ask the analysis which constraints
    // break.
    let squeezed = solution
        .schedule()
        .scaled(GAAS_TARGET_CYCLE_NS / solution.cycle_time());
    let report = verify(&circuit, &squeezed);
    println!("\nat the 4-ns target (same schedule shape):");
    for v in report.violations().iter().take(5) {
        println!("  {v}");
    }
    Ok(())
}
